#include "lp/simplex.h"

#include <algorithm>
#include <ostream>

#include "util/audit.h"
#include "util/logging.h"

namespace coverpack {

std::ostream& operator<<(std::ostream& os, LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return os << "optimal";
    case LpStatus::kInfeasible:
      return os << "infeasible";
    case LpStatus::kUnbounded:
      return os << "unbounded";
  }
  return os << "unknown";
}

namespace {

/// Slack-form dictionary for the simplex method (CLRS-style), over exact
/// rationals with Bland's anti-cycling rule.
///
/// Maintains: x_{basic[i]} = b[i] - sum_j a[i][j] * x_{nonbasic[j]}
///            z = v + sum_j c[j] * x_{nonbasic[j]}
class Dictionary {
 public:
  Dictionary(const std::vector<std::vector<Rational>>& rows, const std::vector<Rational>& bounds,
             const std::vector<Rational>& objective, size_t num_vars)
      : n_(num_vars), m_(rows.size()), a_(rows), b_(bounds), c_(objective), v_(0) {
    basic_.resize(m_);
    nonbasic_.resize(n_);
    for (size_t j = 0; j < n_; ++j) nonbasic_[j] = j;
    for (size_t i = 0; i < m_; ++i) basic_[i] = n_ + i;
  }

  /// Adds the phase-one auxiliary variable x0 (id = n_ + m_) with
  /// coefficient -1 in every row and objective -x0.
  void AddAuxiliary() {
    for (auto& row : a_) row.push_back(Rational(-1));
    nonbasic_.push_back(n_ + m_);
    c_.assign(n_ + 1, Rational(0));
    c_.back() = Rational(-1);
    v_ = Rational(0);
    ++n_;
    has_aux_ = true;
  }

  /// One pivot making the auxiliary variable basic in the most-negative row,
  /// which restores feasibility for phase one.
  void InitialAuxPivot() {
    size_t worst = 0;
    for (size_t i = 1; i < m_; ++i) {
      if (b_[i] < b_[worst]) worst = i;
    }
    Pivot(worst, n_ - 1);
  }

  /// Runs simplex to optimality. Returns false if unbounded.
  bool Optimize() {
    for (;;) {
      // Bland: entering variable = smallest id with positive reduced cost.
      size_t enter_col = n_;
      size_t enter_id = SIZE_MAX;
      for (size_t j = 0; j < n_; ++j) {
        if (c_[j].is_positive() && nonbasic_[j] < enter_id) {
          enter_id = nonbasic_[j];
          enter_col = j;
        }
      }
      if (enter_col == n_) return true;  // optimal

      // Leaving variable: tightest ratio, ties broken by smallest id.
      size_t leave_row = m_;
      Rational best_ratio;
      for (size_t i = 0; i < m_; ++i) {
        if (!a_[i][enter_col].is_positive()) continue;
        Rational ratio = b_[i] / a_[i][enter_col];
        if (leave_row == m_ || ratio < best_ratio ||
            (ratio == best_ratio && basic_[i] < basic_[leave_row])) {
          best_ratio = ratio;
          leave_row = i;
        }
      }
      if (leave_row == m_) return false;  // unbounded
      CP_AUDIT_ONLY(const Rational objective_before = v_;)
      Pivot(leave_row, enter_col);
      // Pivoting from a feasible dictionary must preserve feasibility, and
      // (maximization) the objective may only stay or grow — Bland's rule
      // admits degenerate pivots that leave it unchanged but never a drop.
      CP_AUDIT(Feasible());
      CP_AUDIT(!(v_ < objective_before));
    }
  }

  /// True iff all basic values are nonnegative.
  bool Feasible() const {
    for (const auto& bound : b_) {
      if (bound.is_negative()) return false;
    }
    return true;
  }

  Rational objective_value() const { return v_; }

  /// If the auxiliary variable is basic (degenerately, at value 0), pivots
  /// it out on any row coefficient that is nonzero.
  void ForceAuxNonbasic() {
    size_t aux_id = OriginalAuxId();
    for (size_t i = 0; i < m_; ++i) {
      if (basic_[i] != aux_id) continue;
      CP_CHECK(b_[i].is_zero()) << "auxiliary basic at nonzero value";
      for (size_t j = 0; j < n_; ++j) {
        if (!a_[i][j].is_zero()) {
          Pivot(i, j);
          return;
        }
      }
      CP_CHECK(false) << "auxiliary row has no pivot";
    }
  }

  /// Removes the auxiliary column and installs the original objective,
  /// substituting basic variables by their row expressions.
  void RestoreObjective(const std::vector<Rational>& original_objective) {
    size_t aux_id = OriginalAuxId();
    // Drop the auxiliary column.
    size_t aux_col = SIZE_MAX;
    for (size_t j = 0; j < n_; ++j) {
      if (nonbasic_[j] == aux_id) aux_col = j;
    }
    CP_CHECK_NE(aux_col, SIZE_MAX) << "auxiliary not nonbasic after phase one";
    for (auto& row : a_) row.erase(row.begin() + static_cast<long>(aux_col));
    nonbasic_.erase(nonbasic_.begin() + static_cast<long>(aux_col));
    --n_;
    has_aux_ = false;

    // Rebuild objective z = sum_k orig[k] * x_k over current dictionary.
    c_.assign(n_, Rational(0));
    v_ = Rational(0);
    for (size_t k = 0; k < original_objective.size(); ++k) {
      if (original_objective[k].is_zero()) continue;
      // Is variable k nonbasic?
      bool substituted = false;
      for (size_t j = 0; j < n_; ++j) {
        if (nonbasic_[j] == k) {
          c_[j] += original_objective[k];
          substituted = true;
          break;
        }
      }
      if (substituted) continue;
      // Variable k is basic: substitute its row expression.
      for (size_t i = 0; i < m_; ++i) {
        if (basic_[i] == k) {
          v_ += original_objective[k] * b_[i];
          for (size_t j = 0; j < n_; ++j) {
            c_[j] -= original_objective[k] * a_[i][j];
          }
          substituted = true;
          break;
        }
      }
      CP_CHECK(substituted) << "variable neither basic nor nonbasic";
    }
  }

  /// Extracts the value of each original variable.
  std::vector<Rational> Solution(size_t num_original_vars) const {
    std::vector<Rational> x(num_original_vars, Rational(0));
    for (size_t i = 0; i < m_; ++i) {
      if (basic_[i] < num_original_vars) x[basic_[i]] = b_[i];
    }
    return x;
  }

 private:
  size_t OriginalAuxId() const { return kAuxBase; }

  void Pivot(size_t r, size_t c) {
    Rational pivot = a_[r][c];
    CP_CHECK(!pivot.is_zero());
    Rational inv = pivot.Inverse();

    // Rewrite the pivot row so the entering variable is expressed in terms
    // of the leaving variable and the other nonbasics.
    b_[r] *= inv;
    for (size_t j = 0; j < n_; ++j) {
      if (j == c) continue;
      a_[r][j] *= inv;
    }
    a_[r][c] = inv;

    // Substitute into the other rows.
    for (size_t i = 0; i < m_; ++i) {
      if (i == r) continue;
      Rational factor = a_[i][c];
      if (factor.is_zero()) continue;
      b_[i] -= factor * b_[r];
      for (size_t j = 0; j < n_; ++j) {
        if (j == c) continue;
        a_[i][j] -= factor * a_[r][j];
      }
      a_[i][c] = -factor * a_[r][c];
    }

    // Substitute into the objective.
    Rational factor = c_[c];
    if (!factor.is_zero()) {
      v_ += factor * b_[r];
      for (size_t j = 0; j < n_; ++j) {
        if (j == c) continue;
        c_[j] -= factor * a_[r][j];
      }
      c_[c] = -factor * a_[r][c];
    }

    std::swap(basic_[r], nonbasic_[c]);
  }

  static constexpr size_t kAuxBase = 1u << 20;  // unique id for the aux var

 public:
  /// Renames the auxiliary variable to the sentinel id so it can never be
  /// preferred by Bland's rule over real variables.
  void TagAuxiliary() {
    CP_CHECK(has_aux_);
    nonbasic_.back() = kAuxBase;
  }

 private:
  size_t n_;  // nonbasic count
  size_t m_;  // basic count
  std::vector<std::vector<Rational>> a_;
  std::vector<Rational> b_;
  std::vector<Rational> c_;
  Rational v_;
  std::vector<size_t> basic_;
  std::vector<size_t> nonbasic_;
  bool has_aux_ = false;
};

}  // namespace

LinearProgram::LinearProgram(size_t num_vars) : num_vars_(num_vars) {
  CP_CHECK_GE(num_vars, 1u);
  objective_.assign(num_vars, Rational(0));
}

void LinearProgram::AddLeq(const std::vector<Rational>& coeffs, const Rational& bound) {
  CP_CHECK_EQ(coeffs.size(), num_vars_);
  rows_.push_back(coeffs);
  bounds_.push_back(bound);
}

void LinearProgram::AddGeq(const std::vector<Rational>& coeffs, const Rational& bound) {
  std::vector<Rational> negated(coeffs.size());
  for (size_t i = 0; i < coeffs.size(); ++i) negated[i] = -coeffs[i];
  AddLeq(negated, -bound);
}

void LinearProgram::AddEq(const std::vector<Rational>& coeffs, const Rational& bound) {
  AddLeq(coeffs, bound);
  AddGeq(coeffs, bound);
}

void LinearProgram::SetObjective(const std::vector<Rational>& coeffs) {
  CP_CHECK_EQ(coeffs.size(), num_vars_);
  objective_ = coeffs;
}

LpResult LinearProgram::Maximize() const {
  LpResult result;
  CP_CHECK(!rows_.empty()) << "LP with no constraints is unbounded or trivial";

  Dictionary dict(rows_, bounds_, objective_, num_vars_);
  if (!dict.Feasible()) {
    // Phase one with the auxiliary variable.
    Dictionary aux(rows_, bounds_, objective_, num_vars_);
    aux.AddAuxiliary();
    aux.TagAuxiliary();
    aux.InitialAuxPivot();
    bool bounded = aux.Optimize();
    CP_CHECK(bounded) << "phase-one LP cannot be unbounded";
    if (!aux.objective_value().is_zero()) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
    aux.ForceAuxNonbasic();
    aux.RestoreObjective(objective_);
    if (!aux.Optimize()) {
      result.status = LpStatus::kUnbounded;
      return result;
    }
    result.status = LpStatus::kOptimal;
    result.objective = aux.objective_value();
    result.solution = aux.Solution(num_vars_);
    return result;
  }

  if (!dict.Optimize()) {
    result.status = LpStatus::kUnbounded;
    return result;
  }
  result.status = LpStatus::kOptimal;
  result.objective = dict.objective_value();
  result.solution = dict.Solution(num_vars_);
  return result;
}

LpResult LinearProgram::Minimize() const {
  LinearProgram negated(num_vars_);
  negated.rows_ = rows_;
  negated.bounds_ = bounds_;
  std::vector<Rational> flipped(num_vars_);
  for (size_t i = 0; i < num_vars_; ++i) flipped[i] = -objective_[i];
  negated.objective_ = flipped;
  LpResult result = negated.Maximize();
  if (result.status == LpStatus::kOptimal) result.objective = -result.objective;
  return result;
}

}  // namespace coverpack
