#include "core/load_planner.h"

#include <cmath>

#include "lp/covers.h"
#include "query/decomposition.h"
#include "relation/oracle.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace coverpack {

uint64_t RatioRoot(long double numerator, uint32_t p, uint32_t k) {
  CP_CHECK_GE(k, 1u);
  long double ratio = numerator / static_cast<long double>(p);
  if (ratio <= 1.0L) return 1;
  long double root = std::pow(ratio, 1.0L / static_cast<long double>(k));
  uint64_t candidate = static_cast<uint64_t>(root);
  // Nudge to the exact ceiling: smallest L with L^k * p >= numerator.
  while (std::pow(static_cast<long double>(candidate), static_cast<long double>(k)) *
             static_cast<long double>(p) <
         numerator) {
    ++candidate;
  }
  return std::max<uint64_t>(1, candidate);
}

uint64_t PlanLoadConservative(const Hypergraph& query, const JoinTree& tree,
                              const Instance& instance, uint32_t p) {
  uint64_t best = 1;
  for (SubsetIterator it(query.AllEdges()); !it.Done(); it.Next()) {
    EdgeSet s = it.Current();
    if (s.empty()) continue;
    uint64_t subjoin = SubjoinSize(query, tree, instance, s);
    best = std::max(best, RatioRoot(static_cast<long double>(subjoin), p, s.size()));
  }
  return best;
}

uint64_t PlanLoadOptimal(const Hypergraph& query, const Instance& instance, uint32_t p) {
  uint64_t best = 1;
  for (EdgeSet s : SFamily(query)) {
    if (s.empty()) continue;
    long double product = 1.0L;
    for (EdgeId e : s.ToVector()) {
      product *= static_cast<long double>(instance[e].size());
    }
    best = std::max(best, RatioRoot(product, p, s.size()));
  }
  return best;
}

uint64_t PlanLoadUniform(const Hypergraph& query, uint64_t n, uint32_t p) {
  Rational rho = RhoStar(query);
  CP_CHECK(rho.is_integer()) << "PlanLoadUniform expects an acyclic query (integral rho*)";
  uint32_t k = static_cast<uint32_t>(rho.num());
  long double numerator = std::pow(static_cast<long double>(n), static_cast<long double>(k));
  return RatioRoot(numerator, p, k);
}

}  // namespace coverpack
