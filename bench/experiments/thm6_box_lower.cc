/// \file thm6_box_lower.cc
/// \brief Validates Theorem 6: the box-join lower bound Omega(N / p^(1/3)).
///
/// Three steps, mirroring the proof:
///  1. construct the probabilistic hard instance (output ~ N^2, the AGM
///     bound);
///  2. search all Cartesian load shapes for the per-server emit capacity
///     J(L) and verify it stays under 2 L^3 / N (concentration), while the
///     construction admits shapes achieving ~ L^3 / N (tightness);
///  3. apply the counting argument p * J(L) >= N^2 to recover
///     L >= N / (2p)^(1/3) — strictly stronger than the AGM-based
///     Omega(N / p^(1/2)) since tau* = 3 > 2 = rho*.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "experiments/runners.h"
#include "lowerbound/emit_capacity.h"
#include "lowerbound/hard_instance.h"
#include "query/catalog.h"
#include "relation/oracle.h"

namespace coverpack {
namespace bench {

telemetry::RunReport RunThm6BoxLower(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  Hypergraph box = catalog::BoxJoin();
  PackingProvability witness = lowerbound::BoxJoinWitness(box);
  uint64_t n = 32768;
  const uint64_t seed = ExperimentSeed(2021);
  lowerbound::HardInstance hard = lowerbound::BoxJoinHardInstance(box, n, seed);
  n = hard.n;
  report.AddParam("N", n);
  report.AddParam("seed", seed);

  // Output = |R1| * |R2| (every (a,b,c) joins every sampled (d,e,f);
  // verified by materialization at small N in the test suite).
  uint64_t output = hard.instance[*box.FindEdge("R1")].size() *
                    hard.instance[*box.FindEdge("R2")].size();
  std::cout << "hard instance: N = " << n << ", |R2| = "
            << hard.instance[*box.FindEdge("R2")].size() << " (expected ~N), output = "
            << output << " (AGM bound N^2 = " << n * n << ")\n\n";

  // Step 2: emit capacity across loads.
  TablePrinter cap_table({"L", "J(L) measured", "cap 2L^3/N", "measured/cap",
                          "shapes searched"});
  bool cap_holds = true;
  bool tight = true;
  for (uint32_t p : {8u, 64u, 512u, 4096u}) {
    telemetry::MetricsRegistry::ScopedTimer timer(&report.metrics,
                                                  "emit_capacity_search");
    uint64_t load = static_cast<uint64_t>(
        static_cast<double>(n) / std::pow(static_cast<double>(p), 1.0 / 3.0));
    lowerbound::EmitCapacityResult r =
        lowerbound::SearchEmitCapacity(box, hard, witness, load, /*exact_top_k=*/150);
    report.metrics.AddCounter("shapes_searched", r.shapes_searched);
    double ratio = static_cast<double>(r.measured) / r.predicted_cap;
    cap_table.AddRow({std::to_string(load), std::to_string(r.measured),
                      FormatDouble(r.predicted_cap, 0), FormatDouble(ratio, 3),
                      std::to_string(r.shapes_searched)});
    if (ratio > 1.0) cap_holds = false;
    if (ratio < 1.0 / 32.0) tight = false;
  }
  cap_table.Print(std::cout);
  std::cout << "J(L) <= 2L^3/N on every Cartesian shape: " << (cap_holds ? "yes" : "NO")
            << "; construction achieves a constant fraction: " << (tight ? "yes" : "NO")
            << "\n\n";

  // Step 3: counting argument.
  TablePrinter bound_table({"p", "new bound N/(2p)^(1/3)", "AGM-based N/p^(1/2)",
                            "improvement factor"});
  bool stronger = true;
  for (uint32_t p : {64u, 512u, 4096u, 32768u}) {
    double new_bound = lowerbound::CountingArgumentLoadBound(n, p, witness.tau_star);
    double agm_bound = static_cast<double>(n) / std::sqrt(static_cast<double>(p));
    bound_table.AddRow({std::to_string(p), FormatDouble(new_bound, 1),
                        FormatDouble(agm_bound, 1), FormatDouble(new_bound / agm_bound, 2)});
    if (new_bound <= agm_bound) stronger = false;
  }
  bound_table.Print(std::cout);
  std::cout << "the tau*-based bound strictly dominates the rho*-based bound for p >= 64: "
            << (stronger ? "yes" : "NO") << "\n";

  bool ok = cap_holds && tight && stronger;
  FinishReport(report, ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
