/// \file oracle.h
/// \brief Sequential join evaluation, used as ground truth for the MPC
/// algorithms and for computing instance statistics (subjoin sizes).
///
/// GenericJoin is an attribute-at-a-time worst-case optimal join in the
/// style of [22, 26] (NPRR / Generic Join); AcyclicJoinCount counts join
/// results of an acyclic query in near-linear time by message passing over
/// a join tree — the COUNT(*) join-aggregate query of Appendix A.5.

#ifndef COVERPACK_RELATION_ORACLE_H_
#define COVERPACK_RELATION_ORACLE_H_

#include <cstdint>
#include <vector>

#include "query/hypergraph.h"
#include "query/join_tree.h"
#include "relation/instance.h"

namespace coverpack {

/// Evaluates the full natural join of `instance` over `query` sequentially.
/// The result schema is the union of all edge attributes. Worst-case
/// optimal up to log factors; intended as the test oracle.
Relation GenericJoin(const Hypergraph& query, const Instance& instance);

/// Counts join results of the full natural join without materializing them,
/// for *alpha-acyclic* queries, by bottom-up counting over the join tree.
/// Runs in O(total input * log) time regardless of output size.
uint64_t AcyclicJoinCount(const Hypergraph& query, const JoinTree& tree,
                          const Instance& instance);

/// Counts join results of an arbitrary query: uses AcyclicJoinCount when a
/// join tree exists, otherwise falls back to GenericJoin and counts rows.
uint64_t JoinCount(const Hypergraph& query, const Instance& instance);

/// The subjoin size |subjoin(T, R, S)| of Definition 3.1: the product over
/// the maximally tree-connected components S_i of T[S] of the join size of
/// the relations in S_i. Saturates at UINT64_MAX.
uint64_t SubjoinSize(const Hypergraph& query, const JoinTree& tree, const Instance& instance,
                     EdgeSet s);

/// Removes all dangling tuples of an acyclic query by a full semi-join
/// reduction over the join tree (Yannakakis phase one): leaf-to-root then
/// root-to-leaf passes. Returns the reduced instance.
Instance SemiJoinReduce(const Hypergraph& query, const JoinTree& tree, const Instance& instance);

}  // namespace coverpack

#endif  // COVERPACK_RELATION_ORACLE_H_
