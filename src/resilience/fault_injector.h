/// \file fault_injector.h
/// \brief Exchange interposer that injects faults and recovers from them.
///
/// The FaultInjector sits at the Exchange choke point (the only place any
/// tuple crosses server boundaries, see mpc/exchange.h) and subjects every
/// charged exchange to its FaultPlan: receiving servers crash mid-delivery,
/// individual messages are dropped or duplicated. Recovery is
/// restore-and-replay at round granularity — destinations are truncated
/// back to their pre-exchange checkpoint and the delivery is retried, with
/// exponential-backoff accounting, until a clean attempt lands or the
/// bounded retry budget is exhausted; past the budget it degrades
/// gracefully to a full deterministic rerun of the exchange (accounted at
/// full plan volume). Because the final accepted attempt is always a clean
/// one and the load charging in Exchange::Execute is untouched, a run under
/// any FaultPlan produces bit-identical results, loads, and traces to the
/// fault-free run — only the fault.* / recovery.* ledger differs.
///
/// All recovery cost lands in the process-global ResilienceTelemetry
/// ledger (Reset / Snapshot, mirroring ExchangeTelemetry) and is surfaced
/// as fault.* / recovery.* metrics in bench reports.

#ifndef COVERPACK_RESILIENCE_FAULT_INJECTOR_H_
#define COVERPACK_RESILIENCE_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "mpc/exchange.h"
#include "resilience/checkpoint.h"
#include "resilience/fault_plan.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace coverpack {
namespace resilience {

/// Point-in-time copy of the recovery ledger. Sample vectors hold
/// integer-valued doubles only, so downstream histogram aggregates are
/// exact and independent of the (thread-dependent) recording order.
struct ResilienceTelemetrySnapshot {
  uint64_t exchanges_injected = 0;  ///< charged exchanges run under the injector
  uint64_t exchanges_faulted = 0;   ///< of those, how many needed recovery
  uint64_t crashes = 0;             ///< (attempt, server) crash events
  uint64_t rows_dropped = 0;        ///< messages lost to drop corruption
  uint64_t rows_duplicated = 0;     ///< messages duplicated in transit
  uint64_t retries = 0;             ///< faulty attempts rolled back and retried
  uint64_t full_reruns = 0;         ///< retry budget exhausted -> full replay
  uint64_t backoff_units = 0;       ///< simulated backoff cost, min(base<<k, cap)
  uint64_t tuples_resent = 0;       ///< total recovery re-delivery volume
  uint64_t tuples_resent_crash = 0;       ///< ... due to server crashes
  uint64_t tuples_resent_corruption = 0;  ///< ... due to drop/duplicate
  uint64_t tuples_resent_full_rerun = 0;  ///< ... due to full reruns
  uint64_t checkpoints_captured = 0;  ///< implicit round checkpoints taken
  uint64_t checkpoint_tuples = 0;     ///< tuples those checkpoints protected
  uint64_t max_single_resend = 0;     ///< largest per-server resend, any crash
  std::vector<double> attempts_samples;  ///< delivery attempts per faulted exchange
  std::vector<double> resent_samples;    ///< tuples resent per faulted exchange
};

/// Process-global recovery ledger. Kept separate from the LoadTracker on
/// purpose: the tracker must stay bit-identical to the fault-free run, so
/// every cost of *recovering* lives here instead.
class ResilienceTelemetry {
 public:
  /// One exchange's worth of recovery accounting, merged atomically.
  struct ExchangeRecord {
    bool faulted = false;
    uint64_t crashes = 0;
    uint64_t rows_dropped = 0;
    uint64_t rows_duplicated = 0;
    uint64_t retries = 0;
    bool full_rerun = false;
    uint64_t backoff_units = 0;
    uint64_t tuples_resent = 0;
    uint64_t tuples_resent_crash = 0;
    uint64_t tuples_resent_corruption = 0;
    uint64_t tuples_resent_full_rerun = 0;
    uint64_t checkpoint_tuples = 0;
    uint64_t max_single_resend = 0;
    uint64_t attempts = 0;  ///< total delivery attempts, incl. the clean one
  };

  static void Reset();
  static void Record(const ExchangeRecord& record);
  static ResilienceTelemetrySnapshot Snapshot();
};

/// The interposer. Install around a run (see ScopedFaultInjection) and
/// every charged exchange is delivered under the plan's fault schedule.
/// Thread-safe: concurrent Deliver calls work on disjoint delivery state
/// and merge into the ledger under its lock.
class FaultInjector : public mpc::ExchangeInterposer {
 public:
  explicit FaultInjector(const FaultSpec& spec) : plan_(spec) {}
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }

  /// Per-injector view of the implicit checkpoints taken so far.
  RoundCheckpointStore CheckpointLedger() const;

  uint64_t Deliver(mpc::ExchangeDelivery& delivery) override;

 private:
  FaultPlan plan_;
  mutable Mutex mutex_;
  RoundCheckpointStore checkpoints_ CP_GUARDED_BY(mutex_);
};

/// RAII installation of a FaultInjector as the process interposer. Nests:
/// the previously installed interposer (if any) is restored on destruction.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultSpec& spec)
      : injector_(spec), previous_(mpc::ExchangeInterposer::Install(&injector_)) {}
  ~ScopedFaultInjection() { mpc::ExchangeInterposer::Install(previous_); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
  mpc::ExchangeInterposer* previous_;
};

}  // namespace resilience
}  // namespace coverpack

#endif  // COVERPACK_RESILIENCE_FAULT_INJECTOR_H_
