/// \file run_report.h
/// \brief RunReport: the structured record one experiment produces.
///
/// Every bench experiment returns exactly one RunReport; the unified
/// driver (bench/coverpack_bench.cc) stamps the wall-clock time and
/// serializes the collection as BENCH_results.json — the repo's
/// perf-trajectory format. A report carries:
///
///  * identity — machine id (stable, filterable), display id (the VERDICT
///    line id the text reports have always used), and the paper claim;
///  * the parameter grid the experiment ran (N, p sweep, seeds, ...);
///  * measured complexity — headline max-load and rounds, plus full
///    per-round load-skew profiles of every simulated run it chose to
///    profile;
///  * fitted-vs-theoretical exponent comparisons with their tolerances;
///  * free-form metrics (counters/gauges/histograms/timers);
///  * the PASS/DEVIATION verdict and wall-clock duration.
///
/// The JSON schema is documented in EXPERIMENTS.md ("Machine-readable
/// results"); bump kSchemaVersion on breaking changes.

#ifndef COVERPACK_TELEMETRY_RUN_REPORT_H_
#define COVERPACK_TELEMETRY_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/json_writer.h"
#include "telemetry/load_stats.h"
#include "telemetry/metrics.h"

namespace coverpack {
namespace telemetry {

/// Version of the BENCH_results.json record layout.
inline constexpr int kSchemaVersion = 1;

/// One fitted exponent against its theoretical value.
struct ExponentFit {
  std::string label;
  double fitted = 0.0;
  double theory = 0.0;
  double tolerance = 0.0;
  bool match = false;
};

/// The structured outcome of one experiment run.
struct RunReport {
  RunReport() = default;
  RunReport(std::string id_in, std::string display_id_in, std::string claim_in)
      : id(std::move(id_in)),
        display_id(std::move(display_id_in)),
        claim(std::move(claim_in)) {}

  std::string id;          ///< machine id, e.g. "table1_complexity"
  std::string display_id;  ///< VERDICT-line id, e.g. "Table1"
  std::string claim;       ///< the paper claim under test

  JsonValue params = JsonValue::Object();
  std::vector<ExponentFit> exponents;
  std::vector<LoadSkewProfile> load_profiles;
  MetricsRegistry metrics;

  /// Headline measured complexity: maxima over the profiled runs. Zero
  /// when the experiment simulates nothing (pure LP/classification).
  uint64_t max_load = 0;
  uint32_t rounds = 0;

  bool ok = false;
  double wall_ms = 0.0;  ///< stamped by the driver

  /// Execution parameters, stamped by the driver (additive schema-v1
  /// fields): the thread count the run used, the serial (--threads=1)
  /// wall-clock when the driver measured one (--compare-serial), and the
  /// resulting serial/parallel speedup (0 = not measured).
  unsigned threads = 1;
  double wall_ms_serial = 0.0;
  double speedup = 0.0;

  /// Adds a profile and folds its load/rounds into the headline maxima.
  void AddLoadProfile(LoadSkewProfile profile);

  /// Parameter-grid sugar: params.Set with less noise at call sites.
  template <typename T>
  void AddParam(const std::string& key, T value) {
    params.Set(key, value);
  }

  /// "SHAPE-REPRODUCED" or "DEVIATION" — the exact VERDICT-line token.
  const char* verdict() const { return ok ? "SHAPE-REPRODUCED" : "DEVIATION"; }

  JsonValue ToJson() const;
};

}  // namespace telemetry
}  // namespace coverpack

#endif  // COVERPACK_TELEMETRY_RUN_REPORT_H_
