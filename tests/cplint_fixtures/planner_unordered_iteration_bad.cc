// cplint fixture: a join-order DP whose memo table is an unordered map
// iterated to pick the final plan. In src/planner/ tie-breaks would then
// depend on hash-table layout, so equal-cost orders could differ between
// runs and the chooser's decision digest would not be stable.
#include <string>
#include <unordered_map>

std::string BestOrder() {
  std::unordered_map<unsigned long, std::string> memo;
  std::string best;
  for (const auto& [subset, order] : memo) {
    if (best.empty() || order < best) best = order;
  }
  return best;
}
