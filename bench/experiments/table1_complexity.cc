/// \file table1_complexity.cc
/// \brief Regenerates Table 1: worst-case complexity of join evaluation in
/// the MPC model, one row per query class.
///
/// Columns mirror the paper's table: the one-round complexity in terms of
/// psi*, the multi-round upper bound in terms of rho* (acyclic: Theorem 5),
/// and the multi-round lower bound in terms of tau* (edge-packing-provable
/// cyclic joins: Theorems 6/7). Measured loads at a fixed (N, p) accompany
/// every theory column that our simulator can exercise.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/acyclic_join.h"
#include "core/one_round.h"
#include "experiments/runners.h"
#include "lowerbound/emit_capacity.h"
#include "lp/covers.h"
#include "lp/packing_provable.h"
#include "query/catalog.h"
#include "query/properties.h"
#include "workload/generators.h"

namespace coverpack {
namespace bench {

telemetry::RunReport RunTable1Complexity(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  uint64_t n = 8192;
  uint32_t p = 64;
  std::cout << "N = " << n << ", p = " << p << ", matching (skew-free) instances\n\n";
  report.AddParam("N", n);
  report.AddParam("p", p);
  report.AddParam("instance_family", "matching");

  TablePrinter table({"query", "class", "psi*", "rho*", "tau*", "1-round load",
                      "N/p^(1/psi*)", "multi-round load", "N/p^(1/rho*)",
                      "lower bnd N/p^(1/tau*)"});

  bool all_ok = true;
  for (const auto& entry : catalog::StandardRoster()) {
    const Hypergraph& q = entry.query;
    Rational psi = EdgeQuasiPackingNumber(q);
    Rational rho = RhoStar(q);
    Rational tau = TauStar(q);
    bool acyclic = IsAlphaAcyclic(q);
    report.metrics.AddCounter(acyclic ? "queries_acyclic" : "queries_cyclic");

    Instance instance = workload::MatchingInstance(q, n);

    OneRoundOptions or_options;
    or_options.collect = false;
    OneRoundResult one = ComputeOneRoundSkewAware(q, instance, p, or_options);
    ProfileRun(report, entry.name + "/one_round", one.load_tracker);
    double psi_theory =
        static_cast<double>(n) / std::pow(static_cast<double>(p), 1.0 / psi.ToDouble());

    std::string multi_load = "-";
    std::string rho_theory = "-";
    if (acyclic) {
      AcyclicRunOptions options;
      options.collect = false;
      options.p = p;
      AcyclicRunResult run = ComputeAcyclicJoin(q, instance, options);
      ProfileRun(report, entry.name + "/multi_round", run.load_tracker);
      multi_load = std::to_string(run.max_load);
      double theory =
          static_cast<double>(n) / std::pow(static_cast<double>(p), 1.0 / rho.ToDouble());
      rho_theory = FormatDouble(theory, 0);
      // Shape: within 16x of theory.
      double measured = static_cast<double>(run.max_load);
      if (measured > 16.0 * theory || measured * 16.0 < theory) all_ok = false;
    }

    std::string lower = "-";
    PackingProvability witness = AnalyzePackingProvable(q);
    if (witness.provable) {
      lower = FormatDouble(lowerbound::CountingArgumentLoadBound(n, p, tau), 0);
    }

    table.AddRow({entry.name, acyclic ? "acyclic" : "cyclic", psi.ToString(), rho.ToString(),
                  tau.ToString(), std::to_string(one.max_load), FormatDouble(psi_theory, 0),
                  multi_load, rho_theory, lower});
  }
  table.Print(std::cout);
  std::cout << "(matching instances are skew-free, so the one-round algorithm performs at\n"
               " its tau*-governed best here; its psi* column is the worst-case guarantee,\n"
               " attained on the adversarial instances of bench_intro_gap.)\n";

  FinishReport(report, all_ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
