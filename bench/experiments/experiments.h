/// \file experiments.h
/// \brief The bench experiment registry.
///
/// Every display/theorem of the paper is one registered Experiment: a
/// machine id (stable, filterable), the banner title and VERDICT-line id
/// its text report has always used, the paper claim, and a run function
/// returning a telemetry::RunReport. The unified driver
/// (bench/coverpack_bench.cc) runs any subset and emits
/// BENCH_results.json; the historical one-binary-per-display wrappers
/// call RunExperimentStandalone and keep working unchanged.

#ifndef COVERPACK_BENCH_EXPERIMENTS_EXPERIMENTS_H_
#define COVERPACK_BENCH_EXPERIMENTS_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "mpc/load_tracker.h"
#include "telemetry/load_stats.h"
#include "telemetry/run_report.h"

namespace coverpack {
namespace bench {

/// One registered bench experiment.
struct Experiment {
  const char* id;          ///< machine id, e.g. "table1_complexity"
  const char* title;       ///< banner heading, e.g. "Table 1"
  const char* display_id;  ///< VERDICT-line id, e.g. "Table1"
  const char* claim;       ///< the paper claim under test
  bool fast;               ///< cheap enough for the CI fast subset
  telemetry::RunReport (*run)(const Experiment&);
};

/// All experiments, in paper order. The list is assembled statically in
/// experiments.cc (an explicit table, not self-registration, so no
/// static-initialization-order or linker-GC surprises).
const std::vector<Experiment>& AllExperiments();

/// Exact-id lookup; nullptr when absent.
const Experiment* FindExperiment(const std::string& id);

/// One --filter term against id and display_id, case-insensitive. Terms
/// containing '*' or '?' are whole-id globs ("thm5*" matches
/// thm5_optimal_acyclic and thm5_random_queries); plain terms keep the
/// historical substring semantics.
bool ExperimentMatchesFilter(const Experiment& experiment, const std::string& filter);

/// Runs one experiment by exact id, printing its text report, and returns
/// a process exit code (0 = SHAPE-REPRODUCED). Entry point for the thin
/// per-experiment wrapper binaries; does not write JSON.
int RunExperimentStandalone(const std::string& id);

/// Runs one experiment with exchange instrumentation: resets the
/// process-global ExchangeTelemetry, invokes the run function, and
/// snapshots the "exchange.*" metrics into the report (EXPERIMENTS.md
/// documents the keys). All drivers go through this so every
/// BENCH_results.json row carries the exchange profile of its run.
telemetry::RunReport RunExperiment(const Experiment& experiment);

/// Seeds a RunReport with the experiment's identity. Every run function
/// starts with this, so the registry row is the single source of truth.
inline telemetry::RunReport MakeReport(const Experiment& experiment) {
  return telemetry::RunReport(experiment.id, experiment.display_id, experiment.claim);
}

/// Profiles one simulated run into the report: adds the load-skew profile
/// under `name` and feeds every nonempty round's skew ratio into the
/// shared "round_skew_ratio" histogram.
void ProfileRun(telemetry::RunReport& report, const std::string& name,
                const LoadTracker& tracker);

}  // namespace bench
}  // namespace coverpack

#endif  // COVERPACK_BENCH_EXPERIMENTS_EXPERIMENTS_H_
