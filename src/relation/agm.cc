#include "relation/agm.h"

#include <cmath>

#include "lp/covers.h"
#include "lp/simplex.h"
#include "util/logging.h"

namespace coverpack {

double AgmBound(const Hypergraph& query, const Instance& instance) {
  instance.CheckAgainst(query);
  // Minimize sum_e f(e) * log2|R(e)| subject to cover constraints, with
  // log2 sizes rationalized at denominator 2^16.
  constexpr int64_t kScale = 1 << 16;
  LinearProgram lp(query.num_edges());
  for (AttrId v : query.AllAttrs().ToVector()) {
    std::vector<Rational> row(query.num_edges(), Rational(0));
    for (uint32_t e = 0; e < query.num_edges(); ++e) {
      if (query.edge(e).attrs.Contains(v)) row[e] = Rational(1);
    }
    lp.AddGeq(row, Rational(1));
  }
  std::vector<Rational> objective(query.num_edges());
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    size_t size = instance[e].size();
    if (size == 0) return 0.0;  // empty relation, empty join
    double log_size = std::log2(static_cast<double>(size));
    objective[e] = Rational(static_cast<int64_t>(std::llround(log_size * kScale)), kScale);
  }
  lp.SetObjective(objective);
  LpResult result = lp.Minimize();
  CP_CHECK(result.status == LpStatus::kOptimal);
  return std::exp2(result.objective.ToDouble());
}

double AgmBoundUniform(const Hypergraph& query, uint64_t n) {
  Rational rho = RhoStar(query);
  return std::pow(static_cast<double>(n), rho.ToDouble());
}

}  // namespace coverpack
