/// \file logging.h
/// \brief Assertion and check macros used throughout the library.
///
/// Follows the CHECK/DCHECK idiom: CP_CHECK is always on and aborts with a
/// message on failure; CP_DCHECK compiles away in NDEBUG builds. Both are
/// for programming errors (broken invariants), not for data-dependent
/// conditions, which should surface through Status.

#ifndef COVERPACK_UTIL_LOGGING_H_
#define COVERPACK_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace coverpack {
namespace internal {

/// Accumulates a failure message and aborts the process when destroyed.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " check failed: " << condition << " ";
  }

  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace coverpack

#define CP_CHECK(condition)                                            \
  if (!(condition))                                                    \
  ::coverpack::internal::FatalLogMessage(__FILE__, __LINE__, #condition)

#define CP_CHECK_EQ(a, b) CP_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CP_CHECK_NE(a, b) CP_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CP_CHECK_LT(a, b) CP_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CP_CHECK_LE(a, b) CP_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CP_CHECK_GT(a, b) CP_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CP_CHECK_GE(a, b) CP_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define CP_DCHECK(condition) \
  if (false) CP_CHECK(condition)
#else
#define CP_DCHECK(condition) CP_CHECK(condition)
#endif

#endif  // COVERPACK_UTIL_LOGGING_H_
