/// \file packing_provable.h
/// \brief Definition 5.4: edge-packing-provable degree-two joins.
///
/// The Theorem 7 lower bound applies to degree-two joins that (1) are
/// reduced, (2) have no odd cycle, and (3) admit an optimal fractional
/// *constant-small* vertex covering x such that every edge has at most one
/// "probabilistic" neighbor (a neighbor e with sum_{v in e} x_v > 1).
/// This module decides the predicate and produces the witness cover that
/// the hard-instance generator of Theorem 7 is built from.

#ifndef COVERPACK_LP_PACKING_PROVABLE_H_
#define COVERPACK_LP_PACKING_PROVABLE_H_

#include <string>
#include <vector>

#include "lp/covers.h"
#include "query/hypergraph.h"

namespace coverpack {

/// Outcome of the Definition 5.4 analysis.
struct PackingProvability {
  bool provable = false;
  std::string reason;  ///< Which condition failed (diagnostic), empty if provable.

  /// Witness data (valid when provable):
  VertexWeighting cover;                ///< optimal constant-small vertex cover x
  std::vector<EdgeId> probabilistic;    ///< E' = {e : sum_{v in e} x_v > 1}
  Rational tau_star;                    ///< tau* (== cover.total by duality)
  Rational rho_star;                    ///< rho*
};

/// Checks a caller-supplied vertex cover x against all Definition 5.4
/// conditions (structure conditions on the query are re-checked too).
PackingProvability AnalyzeWithCover(const Hypergraph& query, const VertexWeighting& x);

/// Searches for a witness cover: first the plain vertex-cover LP optimum,
/// then (if needed) re-solves with each subset of edges designated as the
/// probabilistic set E' (equality constraints on the rest plus the
/// constant-small cap). Exponential in query size, which is constant.
PackingProvability AnalyzePackingProvable(const Hypergraph& query);

}  // namespace coverpack

#endif  // COVERPACK_LP_PACKING_PROVABLE_H_
