#include "query/decomposition.h"

#include <gtest/gtest.h>

#include "lp/covers.h"
#include "query/catalog.h"
#include "query/parser.h"
#include "query/properties.h"

namespace coverpack {
namespace {

class AcyclicRosterTest : public ::testing::TestWithParam<catalog::NamedQuery> {};

/// The heart of Theorem 5: the largest set in Theorem 3's family S(E) has
/// exactly rho* relations, so the Theorem 4 load is N / p^(1/rho*).
TEST_P(AcyclicRosterTest, MaxSFamilySizeEqualsRhoStar) {
  const auto& entry = GetParam();
  Rational rho = RhoStar(entry.query);
  ASSERT_TRUE(rho.is_integer()) << entry.name;  // Lemma A.2
  EXPECT_EQ(MaxSFamilySetSize(entry.query), static_cast<uint32_t>(rho.num())) << entry.name;
}

TEST_P(AcyclicRosterTest, FamilySetsAreEdgeSubsets) {
  const auto& entry = GetParam();
  for (EdgeSet s : SFamily(entry.query)) {
    EXPECT_TRUE(s.IsSubsetOf(entry.query.AllEdges())) << entry.name;
  }
}

TEST_P(AcyclicRosterTest, FamilyContainsEverySingleRelationAlternative) {
  // Every relation appears in at least one family set: the algorithm may
  // have to pay for scanning any single relation.
  const auto& entry = GetParam();
  EdgeSet seen;
  for (EdgeSet s : SFamily(entry.query)) seen = seen.Union(s);
  EXPECT_EQ(seen, entry.query.AllEdges()) << entry.name;
}

std::vector<catalog::NamedQuery> AcyclicRoster() {
  std::vector<catalog::NamedQuery> acyclic;
  for (const auto& entry : catalog::StandardRoster()) {
    if (IsAlphaAcyclic(entry.query)) acyclic.push_back(entry);
  }
  return acyclic;
}

INSTANTIATE_TEST_SUITE_P(Catalog, AcyclicRosterTest, ::testing::ValuesIn(AcyclicRoster()),
                         [](const ::testing::TestParamInfo<catalog::NamedQuery>& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(DecompositionTest, Path5Twigs) {
  Hypergraph q = catalog::Path(5);
  auto tree = JoinTree::Build(q);
  ASSERT_TRUE(tree.has_value());
  EdgeSet cover = MinimumIntegralEdgeCover(q).edges;
  TwigDecomposition d = DecomposeTwigs(*tree, q.AllEdges(), cover);
  ASSERT_FALSE(d.twigs.empty());
  EXPECT_TRUE(d.twigs[0].owns_root);
  // All nodes covered by some twig.
  EdgeSet all;
  for (const Twig& twig : d.twigs) all = all.Union(twig.nodes);
  EXPECT_EQ(all, q.AllEdges());
  // Pieces of each twig are node-disjoint and cover the twig.
  for (const Twig& twig : d.twigs) {
    EdgeSet piece_union;
    uint32_t piece_total = 0;
    for (const auto& piece : twig.pieces) {
      for (uint32_t node : piece) piece_union.Insert(node);
      piece_total += static_cast<uint32_t>(piece.size());
    }
    EXPECT_EQ(piece_union, twig.nodes);
    EXPECT_EQ(piece_total, twig.nodes.size());  // disjointness
  }
}

TEST(DecompositionTest, SubsumedRelationsBecomeSingletons) {
  Hypergraph q = catalog::SemiJoinExample();
  std::vector<EdgeSet> family = SFamily(q);
  EdgeId r1 = *q.FindEdge("R1");
  EdgeId r3 = *q.FindEdge("R3");
  EXPECT_NE(std::find(family.begin(), family.end(), EdgeSet::Single(r1)), family.end());
  EXPECT_NE(std::find(family.begin(), family.end(), EdgeSet::Single(r3)), family.end());
  EXPECT_EQ(MaxSFamilySetSize(q), 1u);
}

TEST(DecompositionTest, Figure4Pieces) {
  Hypergraph q = catalog::Figure4Query();
  auto tree = JoinTree::Build(q);
  ASSERT_TRUE(tree.has_value());
  EdgeSet cover = MinimumIntegralEdgeCover(q).edges;
  EXPECT_EQ(cover.size(), 6u);
  TwigDecomposition d = DecomposeTwigs(*tree, q.AllEdges(), cover);
  // Twigs partition the nodes up to shared boundary roots.
  EdgeSet all;
  for (const Twig& twig : d.twigs) all = all.Union(twig.nodes);
  EXPECT_EQ(all, q.AllEdges());
}

TEST(DecompositionTest, DecompositionToStringMentionsAllTwigs) {
  Hypergraph q = catalog::Path(5);
  auto tree = JoinTree::Build(q);
  ASSERT_TRUE(tree.has_value());
  TwigDecomposition d = DecomposeTwigs(*tree, q.AllEdges(), MinimumIntegralEdgeCover(q).edges);
  std::string text = DecompositionToString(q, d);
  EXPECT_NE(text.find("twig 0"), std::string::npos);
  EXPECT_NE(text.find("R1"), std::string::npos);
}

TEST(DecompositionTest, SFamilyAbortsOnCyclic) {
  EXPECT_DEATH(SFamily(catalog::Triangle()), "acyclic");
}

}  // namespace
}  // namespace coverpack
