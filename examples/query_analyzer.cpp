/// \file query_analyzer.cpp
/// \brief Analyze any join query: structure, LP numbers, join tree, twig
/// decomposition, and predicted MPC complexity.
///
///   $ ./query_analyzer "R1(A,B,C), R2(D,E,F), R3(A,D), R4(B,E), R5(C,F)"
///   $ ./query_analyzer                       # analyzes a default roster
///
/// This is the "paper calculator": it answers, for a query of your choice,
/// every question Table 1 asks — what the one-round, multi-round, and
/// lower-bound exponents are, and which theorem governs it.

#include <cmath>
#include <iostream>

#include "lp/covers.h"
#include "lp/packing_provable.h"
#include "query/catalog.h"
#include "query/decomposition.h"
#include "query/join_tree.h"
#include "query/parser.h"
#include "query/properties.h"

namespace {

using namespace coverpack;

void Analyze(const Hypergraph& query) {
  std::cout << "=====================================================\n";
  std::cout << "query: " << query.ToString() << "\n";
  std::cout << "class: " << ClassificationString(query) << "\n";

  Rational rho = RhoStar(query);
  Rational tau = TauStar(query);
  Rational psi = EdgeQuasiPackingNumber(query);
  std::cout << "rho* = " << rho << "  tau* = " << tau << "  psi* = " << psi << "\n";

  std::cout << "one-round worst-case load:   ~N / p^(" << tau.Inverse() << ") skew-free, "
            << "~N / p^(" << psi.Inverse() << ") general [19]\n";

  if (IsAlphaAcyclic(query)) {
    std::cout << "multi-round upper bound:     N / p^(" << rho.Inverse()
              << ") in O(1) rounds [Theorem 5]\n";
    auto tree = JoinTree::Build(query);
    std::cout << "join tree:\n" << tree->ToString(query);
    Hypergraph reduced = Reduce(query);
    auto rtree = JoinTree::Build(reduced);
    EdgeSet cover = MinimumIntegralEdgeCover(reduced).edges;
    std::cout << "integral optimal edge cover (size " << cover.size() << "): {";
    bool first = true;
    for (EdgeId e : cover.ToVector()) {
      std::cout << (first ? "" : ", ") << reduced.edge(e).name;
      first = false;
    }
    std::cout << "}\ntwig decomposition:\n";
    for (EdgeSet component : rtree->Components()) {
      std::cout << DecompositionToString(reduced, DecomposeTwigs(*rtree, component, cover));
    }
    std::cout << "|S(E)| family max set size: " << MaxSFamilySetSize(query)
              << " (= rho*)\n";
  } else {
    PackingProvability witness = AnalyzePackingProvable(query);
    if (witness.provable) {
      std::cout << "multi-round LOWER bound:     N / p^(" << tau.Inverse()
                << ") [Theorem 7: edge-packing-provable]\n";
      if (tau > rho) {
        std::cout << "  -> strictly above the AGM-based N / p^(" << rho.Inverse()
                  << "): cover is NOT the right exponent here (the paper's headline)\n";
      }
    } else {
      std::cout << "multi-round lower bound:     N / p^(" << rho.Inverse()
                << ") (AGM-based; Definition 5.4 not satisfied: " << witness.reason << ")\n";
    }
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    Analyze(coverpack::ParseQuery(argv[1]));
    return 0;
  }
  for (const auto& entry : coverpack::catalog::StandardRoster()) {
    Analyze(entry.query);
  }
  return 0;
}
