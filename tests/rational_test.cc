#include "util/rational.h"

#include <gtest/gtest.h>

namespace coverpack {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.ToString(), "0");
}

TEST(RationalTest, NormalizesSignAndGcd) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_EQ(Rational(0, -7), Rational(0));
}

TEST(RationalTest, Arithmetic) {
  Rational half(1, 2);
  Rational third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 8), Rational(3, 4));
  EXPECT_GE(Rational(-1, 2), Rational(-2, 3));
  EXPECT_LT(Rational(-1), Rational(0));
}

TEST(RationalTest, IntegerDetection) {
  EXPECT_TRUE(Rational(6, 3).is_integer());
  EXPECT_FALSE(Rational(5, 3).is_integer());
}

TEST(RationalTest, Inverse) {
  EXPECT_EQ(Rational(3, 7).Inverse(), Rational(7, 3));
  EXPECT_EQ(Rational(-2).Inverse(), Rational(-1, 2));
}

TEST(RationalTest, MinMax) {
  EXPECT_EQ(Rational::Min(Rational(1, 2), Rational(1, 3)), Rational(1, 3));
  EXPECT_EQ(Rational::Max(Rational(1, 2), Rational(1, 3)), Rational(1, 2));
}

TEST(RationalTest, ToDoubleAndString) {
  EXPECT_DOUBLE_EQ(Rational(3, 2).ToDouble(), 1.5);
  EXPECT_EQ(Rational(3, 2).ToString(), "3/2");
  EXPECT_EQ(Rational(-4, 2).ToString(), "-2");
}

TEST(RationalTest, CompoundAssignment) {
  Rational r(1, 2);
  r += Rational(1, 2);
  EXPECT_EQ(r, Rational(1));
  r *= Rational(2, 3);
  EXPECT_EQ(r, Rational(2, 3));
  r -= Rational(1, 3);
  EXPECT_EQ(r, Rational(1, 3));
  r /= Rational(1, 3);
  EXPECT_EQ(r, Rational(1));
}

TEST(RationalTest, LargeValuesReduceBeforeMultiplying) {
  // (1000000/3) * (3/1000000) must not overflow intermediates.
  Rational a(1000000, 3);
  Rational b(3, 1000000);
  EXPECT_EQ(a * b, Rational(1));
}

}  // namespace
}  // namespace coverpack
