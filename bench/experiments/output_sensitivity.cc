/// \file output_sensitivity.cc
/// \brief Regenerates the Section 1.3 output-optimality discussion: the
/// O(N/p + OUT/p) output-balanced algorithm [15] is unbeatable when OUT is
/// small but degenerates to ~N^{rho*}/p as OUT approaches the AGM bound,
/// while Theorem 5's algorithm holds N / p^(1/rho*) throughout — the
/// crossover happens around OUT ~ p^(1 - 1/rho*) * N.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/acyclic_join.h"
#include "core/output_balanced.h"
#include "experiments/runners.h"
#include "query/catalog.h"
#include "relation/oracle.h"
#include "workload/generators.h"

namespace coverpack {
namespace bench {

namespace {

/// Line-3 instance with tunable output: bipartite blocks of size `side`
/// replicated to keep N fixed; OUT grows with side^2 per block chain.
Instance TunableOutputInstance(const Hypergraph& q, uint64_t n, uint64_t side) {
  Instance instance(q);
  uint64_t blocks = n / (side * side);
  CP_CHECK_GE(blocks, 1u);
  for (uint64_t block = 0; block < blocks; ++block) {
    Value base = static_cast<Value>(block * side);
    for (Value a = 0; a < side; ++a) {
      for (Value b = 0; b < side; ++b) {
        instance[0].AppendRow({base + a, base + b});
        instance[1].AppendRow({base + a, base + b});
        instance[2].AppendRow({base + a, base + b});
      }
    }
  }
  return instance;
}

}  // namespace

telemetry::RunReport RunOutputSensitivity(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  Hypergraph q = catalog::Line3();  // rho* = 2
  uint64_t n = 16384;
  uint32_t p = 64;
  report.AddParam("N", n);
  report.AddParam("p", uint64_t{p});
  double theorem5 = static_cast<double>(n) / std::sqrt(static_cast<double>(p));
  std::cout << "N = " << n << ", p = " << p << ", Theorem 5 load ~ N/sqrt(p) = "
            << FormatDouble(theorem5, 0) << "\n\n";

  TablePrinter table({"block side", "OUT", "OUT/(pN)", "output-balanced load",
                      "multi-round load", "winner"});
  bool crossover_seen_low = false;
  bool crossover_seen_high = false;
  for (uint64_t side : {2u, 8u, 32u, 128u}) {
    telemetry::MetricsRegistry::ScopedTimer timer(&report.metrics,
                                                  "side" + std::to_string(side));
    Instance instance = TunableOutputInstance(q, n, side);
    uint64_t out = JoinCount(q, instance);

    OutputBalancedOptions ob_options;
    OutputBalancedResult ob = ComputeOutputBalanced(q, instance, p, ob_options);

    AcyclicRunOptions mr_options;
    mr_options.collect = false;
    mr_options.p = p;
    AcyclicRunResult mr = ComputeAcyclicJoin(q, instance, mr_options);

    ProfileRun(report, "output_balanced/side" + std::to_string(side), ob.load_tracker);
    ProfileRun(report, "multi_round/side" + std::to_string(side), mr.load_tracker);
    report.metrics.SetGauge("out_over_pn/side" + std::to_string(side),
                            static_cast<double>(out) / (p * static_cast<double>(n)));

    bool balanced_wins = ob.max_load < mr.max_load;
    if (balanced_wins) crossover_seen_low = true;
    if (!balanced_wins && side >= 32) crossover_seen_high = true;
    table.AddRow({std::to_string(side), std::to_string(out),
                  FormatDouble(static_cast<double>(out) / (p * static_cast<double>(n)), 2),
                  std::to_string(ob.max_load), std::to_string(mr.max_load),
                  balanced_wins ? "output-balanced" : "multi-round"});
  }
  table.Print(std::cout);
  std::cout << "output-balanced wins while OUT = O(pN); the multi-round algorithm takes "
               "over as OUT approaches the AGM bound N^2.\n";
  bool ok = crossover_seen_low && crossover_seen_high;
  FinishReport(report, ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
