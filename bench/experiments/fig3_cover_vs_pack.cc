/// \file fig3_cover_vs_pack.cc
/// \brief Regenerates Figure 3: the relationship between rho* and tau* for
/// reduced join queries.
///
/// The figure's point: unlike the RAM model where only rho* matters, in
/// the MPC model queries split into tau* < rho* (e.g. star joins),
/// tau* = rho* (e.g. LW joins, odd cycles), and tau* > rho* (e.g. the box
/// join), and psi* dominates both. We tabulate all three regions.

#include <iostream>

#include "bench_util.h"
#include "experiments/runners.h"
#include "lp/covers.h"
#include "query/catalog.h"
#include "query/properties.h"

namespace coverpack {
namespace bench {

telemetry::RunReport RunFig3CoverVsPack(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  TablePrinter table({"query", "rho*", "tau*", "psi*", "region", "psi*>=max"});
  bool psi_dominates = true;
  bool found_less = false;
  bool found_equal = false;
  bool found_greater = false;
  for (const auto& entry : catalog::StandardRoster()) {
    Hypergraph reduced = Reduce(entry.query);
    Rational rho = RhoStar(reduced);
    Rational tau = TauStar(reduced);
    Rational psi = EdgeQuasiPackingNumber(reduced);
    std::string region;
    if (tau < rho) {
      region = "tau* < rho*";
      found_less = true;
      report.metrics.AddCounter("region_tau_lt_rho");
    } else if (tau == rho) {
      region = "tau* = rho*";
      found_equal = true;
      report.metrics.AddCounter("region_tau_eq_rho");
    } else {
      region = "tau* > rho*";
      found_greater = true;
      report.metrics.AddCounter("region_tau_gt_rho");
    }
    bool dominated = psi >= rho && psi >= tau;
    psi_dominates = psi_dominates && dominated;
    table.AddRow({entry.name, rho.ToString(), tau.ToString(), psi.ToString(), region,
                  dominated ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "regions witnessed: tau*<rho*: " << (found_less ? "yes" : "no")
            << ", tau*=rho*: " << (found_equal ? "yes" : "no")
            << ", tau*>rho*: " << (found_greater ? "yes" : "no") << "\n";

  bool ok = psi_dominates && found_less && found_equal && found_greater;
  FinishReport(report, ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
