#include "telemetry/load_stats.h"

#include <algorithm>
#include <cmath>

#include "mpc/load_tracker.h"
#include "util/audit.h"
#include "util/logging.h"

namespace coverpack {
namespace telemetry {

uint64_t LoadPercentile(std::vector<uint64_t> loads, double q) {
  CP_CHECK(!loads.empty());
  CP_CHECK_GE(q, 0.0);
  CP_CHECK_LE(q, 100.0);
  std::sort(loads.begin(), loads.end());
  // Nearest-rank: the smallest value whose rank covers a q-fraction.
  size_t rank = static_cast<size_t>(
      std::ceil(q / 100.0 * static_cast<double>(loads.size())));
  if (rank == 0) rank = 1;
  return loads[rank - 1];
}

namespace {

RoundLoadStats ProfileRound(const LoadTracker& tracker, uint32_t round) {
  const std::vector<uint64_t>& loads = tracker.RoundLoads(round);
  RoundLoadStats stats;
  stats.round = round;
  stats.max_load = tracker.MaxLoadOfRound(round);
  stats.total = tracker.TotalOfRound(round);
  stats.mean_load = tracker.MeanLoadOfRound(round);
  stats.p50 = LoadPercentile(loads, 50.0);
  stats.p90 = LoadPercentile(loads, 90.0);
  stats.p99 = LoadPercentile(loads, 99.0);
  stats.skew_ratio =
      stats.total == 0 ? 0.0 : static_cast<double>(stats.max_load) / stats.mean_load;
  for (uint64_t load : loads) {
    if (load != 0) ++stats.busy_servers;
  }
  // Percentiles over a sorted vector are report-monotone by construction;
  // audit builds re-assert it against the independently computed max.
  CP_AUDIT_LE(stats.p50, stats.p90);
  CP_AUDIT_LE(stats.p90, stats.p99);
  CP_AUDIT_LE(stats.p99, stats.max_load);
  return stats;
}

}  // namespace

LoadSkewProfile ProfileLoadTracker(const LoadTracker& tracker, std::string name) {
  LoadSkewProfile profile;
  profile.name = std::move(name);
  profile.num_servers = tracker.num_servers();
  profile.num_rounds = tracker.num_rounds();
  profile.max_load = tracker.MaxLoad();
  profile.total_communication = tracker.TotalCommunication();
  profile.rounds.reserve(profile.num_rounds);
  CP_AUDIT_ONLY(uint64_t round_total_sum = 0;)
  for (uint32_t round = 0; round < profile.num_rounds; ++round) {
    profile.rounds.push_back(ProfileRound(tracker, round));
    CP_AUDIT_ONLY(round_total_sum += profile.rounds.back().total;)
  }
  // Conservation: the per-round totals must re-add to the tracker's total
  // communication volume (a lost round here would silently understate skew).
  CP_AUDIT_EQ(round_total_sum, profile.total_communication);
  const uint64_t cells =
      static_cast<uint64_t>(profile.num_servers) * static_cast<uint64_t>(profile.num_rounds);
  if (cells > 0 && profile.total_communication > 0) {
    const double mean_cell = static_cast<double>(profile.total_communication) /
                       static_cast<double>(cells);
    profile.overall_skew_ratio = static_cast<double>(profile.max_load) / mean_cell;
  }
  return profile;
}

JsonValue LoadSkewProfile::ToJson() const {
  JsonValue value = JsonValue::Object();
  value.Set("name", name);
  value.Set("num_servers", num_servers);
  value.Set("num_rounds", num_rounds);
  value.Set("max_load", max_load);
  value.Set("total_communication", total_communication);
  value.Set("overall_skew_ratio", overall_skew_ratio);
  JsonValue round_array = JsonValue::Array();
  for (const RoundLoadStats& stats : rounds) {
    JsonValue entry = JsonValue::Object();
    entry.Set("round", stats.round);
    entry.Set("max_load", stats.max_load);
    entry.Set("mean_load", stats.mean_load);
    entry.Set("p50", stats.p50);
    entry.Set("p90", stats.p90);
    entry.Set("p99", stats.p99);
    entry.Set("skew_ratio", stats.skew_ratio);
    entry.Set("total", stats.total);
    entry.Set("busy_servers", stats.busy_servers);
    round_array.Append(std::move(entry));
  }
  value.Set("rounds", std::move(round_array));
  return value;
}

}  // namespace telemetry
}  // namespace coverpack
