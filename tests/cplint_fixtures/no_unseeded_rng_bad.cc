// cplint fixture: ambient randomness sources.
#include <random>

int Draw() {
  std::random_device rd;
  std::mt19937 gen;
  return static_cast<int>(gen() + rd());
}
int Legacy() { return rand(); }
