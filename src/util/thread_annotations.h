/// \file thread_annotations.h
/// \brief Clang Thread Safety Analysis macros (no-ops on other compilers).
///
/// The repo's concurrency contract — mutex-serialized telemetry, the
/// shard-claiming thread pool, the resilience ledgers — is enforced three
/// ways: TSan at runtime (CI `sanitize-thread`), CP_AUDIT mutation
/// discipline in audit builds, and, with these macros, clang's static
/// thread-safety analysis at compile time (`-DCOVERPACK_THREAD_SAFETY=ON`,
/// which adds `-Wthread-safety -Werror=thread-safety`). Annotate shared
/// state with `CP_GUARDED_BY(mutex_)` and lock-discipline functions with
/// `CP_REQUIRES` / `CP_ACQUIRE` / `CP_RELEASE`; see util/mutex.h for the
/// annotated `Mutex` / `MutexLock` wrappers the analysis understands
/// (std::mutex and std::lock_guard carry no annotations under libstdc++,
/// so guarded state must be locked through the wrappers to be checkable).
///
/// Naming and semantics follow the clang documentation
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); everything
/// expands to nothing outside clang, so GCC builds are unaffected.

#ifndef COVERPACK_UTIL_THREAD_ANNOTATIONS_H_
#define COVERPACK_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define CP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CP_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Declares a class to be a capability (a lockable resource). The string
/// names the capability kind in diagnostics, e.g. CP_CAPABILITY("mutex").
#define CP_CAPABILITY(x) CP_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability (MutexLock-style scoped guards).
#define CP_SCOPED_CAPABILITY CP_THREAD_ANNOTATION_(scoped_lockable)

/// A data member readable/writable only while holding the given capability.
#define CP_GUARDED_BY(x) CP_THREAD_ANNOTATION_(guarded_by(x))

/// A pointer member whose *pointee* is protected by the given capability.
#define CP_PT_GUARDED_BY(x) CP_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function must be called with the given capabilities held; they are
/// still held on return.
#define CP_REQUIRES(...) \
  CP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The function must be called *without* the given capabilities held
/// (anti-deadlock annotation for functions that acquire them internally).
#define CP_EXCLUDES(...) CP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function acquires the given capabilities (or `this` when empty) and
/// does not release them before returning.
#define CP_ACQUIRE(...) \
  CP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases the given capabilities (or `this` when empty).
#define CP_RELEASE(...) \
  CP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function attempts to acquire the capability; the first argument is
/// the return value that signals success.
#define CP_TRY_ACQUIRE(...) \
  CP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The function returns a reference to the given capability (accessor
/// pattern for exposing a member mutex).
#define CP_RETURN_CAPABILITY(x) CP_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the function is race-free by other means.
#define CP_NO_THREAD_SAFETY_ANALYSIS \
  CP_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // COVERPACK_UTIL_THREAD_ANNOTATIONS_H_
