#include "core/one_round.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "mpc/cluster.h"
#include "mpc/hypercube.h"
#include "relation/operators.h"
#include "relation/oracle.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/thread_pool.h"

namespace coverpack {

namespace {

/// A pending piece of work: a (residual) query, its instance, a server
/// budget, and the constant bindings to re-attach at emission.
struct WorkItem {
  Hypergraph query;
  Instance instance;
  uint32_t budget;
  std::vector<std::pair<AttrId, Value>> bindings;
  int depth;
};

/// Finds the most-skewed (attribute, value) pair relative to the hypercube
/// shares; returns false when the instance is share-level skew-free.
bool FindWorstSkew(const Hypergraph& query, const Instance& instance,
                   const mpc::ShareVector& shares, double factor, AttrId* attr,
                   double* worst_ratio) {
  *worst_ratio = 0.0;
  bool found = false;
  for (AttrId v : query.AllAttrs().ToVector()) {
    uint32_t share = shares.shares[v];
    if (share <= 1) continue;  // a single hash bucket cannot be overloaded
    for (uint32_t e = 0; e < query.num_edges(); ++e) {
      if (!query.edge(e).attrs.Contains(v)) continue;
      double threshold =
          factor * static_cast<double>(instance[e].size()) / static_cast<double>(share);
      for (const auto& [value, degree] : DegreeHistogram(instance[e], v)) {
        double ratio = static_cast<double>(degree) / std::max(threshold, 1.0);
        if (ratio > 1.0 && ratio > *worst_ratio) {
          *worst_ratio = ratio;
          *attr = v;
          found = true;
        }
      }
    }
  }
  return found;
}

/// Heavy values of `attr`: degree above factor * |R| / share in some
/// relation containing it.
std::vector<Value> HeavyValues(const Hypergraph& query, const Instance& instance,
                               const mpc::ShareVector& shares, AttrId attr, double factor) {
  std::vector<Value> heavy;
  uint32_t share = std::max<uint32_t>(2, shares.shares[attr]);
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    if (!query.edge(e).attrs.Contains(attr)) continue;
    double threshold =
        factor * static_cast<double>(instance[e].size()) / static_cast<double>(share);
    for (const auto& [value, degree] : DegreeHistogram(instance[e], attr)) {
      if (static_cast<double>(degree) > threshold) heavy.push_back(value);
    }
  }
  std::sort(heavy.begin(), heavy.end());
  heavy.erase(std::unique(heavy.begin(), heavy.end()), heavy.end());
  return heavy;
}

}  // namespace

namespace {

/// Relation sizes of an instance, for the size-aware share optimizer.
std::vector<uint64_t> SizesOf(const Instance& instance) {
  std::vector<uint64_t> sizes;
  sizes.reserve(instance.num_relations());
  for (size_t e = 0; e < instance.num_relations(); ++e) sizes.push_back(instance[e].size());
  return sizes;
}

}  // namespace

OneRoundResult ComputeOneRoundVanilla(const Hypergraph& query, const Instance& instance,
                                      uint32_t p, bool collect) {
  Cluster cluster(p);
  mpc::ShareVector shares = mpc::OptimizeSharesForSizes(query, SizesOf(instance), p);
  mpc::HypercubeResult hc = mpc::HypercubeJoin(&cluster, query, instance, shares, 0, collect);
  OneRoundResult result;
  result.max_load = hc.max_receive_load;
  result.output_count = hc.output_count;
  result.servers_used = shares.grid_size;
  result.load_tracker = cluster.tracker();
  if (collect) result.results = hc.results.Gather();
  return result;
}

OneRoundResult ComputeOneRoundSkewAware(const Hypergraph& query, const Instance& instance,
                                        uint32_t p, const OneRoundOptions& options) {
  instance.CheckAgainst(query);
  OneRoundResult result;
  result.results = Relation(query.AllAttrs());
  result.servers_used = 0;

  // Every leaf work item becomes one hypercube; all fire at round 0 on
  // disjoint server ranges, so the whole computation is one round.
  uint64_t max_load = 0;
  uint64_t servers = 0;
  // Leaf trackers, concatenated into result.load_tracker at the end so the
  // telemetry layer sees the round-0 load distribution across the whole
  // (disjoint-group) cluster.
  std::vector<LoadTracker> leaf_trackers;

  /// What processing one work item produced: either a leaf hypercube or a
  /// list of split-off items for the next frontier. Filled by pool tasks,
  /// harvested in frontier index order — the frontier sequence depends only
  /// on the input, never on the thread count.
  struct Outcome {
    bool is_leaf = false;
    uint64_t leaf_max_load = 0;
    uint64_t leaf_servers = 0;
    std::optional<LoadTracker> tracker;
    Relation local;  // collect-mode leaf output, bindings re-attached
    std::vector<WorkItem> spawned;
  };

  std::vector<WorkItem> frontier;
  frontier.push_back(WorkItem{query, instance, std::max<uint32_t>(1, p), {}, 0});

  while (!frontier.empty()) {
    std::vector<Outcome> outcomes(frontier.size());
    ThreadPool::Global().ParallelFor(0, frontier.size(), 1, [&](size_t w) {
      const WorkItem& item = frontier[w];
      Outcome& out = outcomes[w];

      // Empty relation -> nothing to do for this piece.
      for (uint32_t e = 0; e < item.query.num_edges(); ++e) {
        if (item.instance[e].empty()) return;
      }

      mpc::ShareVector shares =
          mpc::OptimizeSharesForSizes(item.query, SizesOf(item.instance), item.budget);
      AttrId skew_attr = 0;
      double ratio = 0.0;
      bool skewed = item.depth < 32 && item.budget > 1 &&
                    FindWorstSkew(item.query, item.instance, shares, options.skew_factor,
                                  &skew_attr, &ratio);

      if (!skewed) {
        Cluster cluster(std::max<uint32_t>(1, item.budget));
        mpc::HypercubeResult hc = mpc::HypercubeJoin(&cluster, item.query, item.instance,
                                                     shares, 0, options.collect);
        out.is_leaf = true;
        out.leaf_max_load = hc.max_receive_load;
        out.leaf_servers = shares.grid_size;
        out.tracker = cluster.tracker();
        if (options.collect) {
          Relation local = hc.results.Gather();
          for (const auto& [attr, value] : item.bindings) {
            local = AttachConstant(local, attr, value);
          }
          out.local = std::move(local);
        }
        return;
      }

      // Split dom(skew_attr) into heavy values (residual query each) and the
      // light remainder (same query, heavy values removed).
      std::vector<Value> heavy =
          HeavyValues(item.query, item.instance, shares, skew_attr, options.skew_factor);
      CP_CHECK(!heavy.empty());

      uint32_t half = std::max<uint32_t>(1, item.budget / 2);
      // Light remainder keeps half the budget.
      WorkItem light{item.query, Instance(item.query), half, item.bindings, item.depth + 1};
      for (uint32_t e = 0; e < item.query.num_edges(); ++e) {
        const Relation& source = item.instance[e];
        if (source.attrs().Contains(skew_attr)) {
          light.instance[e] = SelectNotIn(source, skew_attr, heavy);
        } else {
          light.instance[e] = source;
        }
      }
      out.spawned.push_back(std::move(light));

      // Heavy values share the other half of the budget evenly.
      uint32_t per_value = std::max<uint32_t>(
          1, half / static_cast<uint32_t>(std::max<size_t>(1, heavy.size())));
      Hypergraph residual = item.query.Residual(AttrSet::Single(skew_attr));
      for (Value a : heavy) {
        WorkItem heavy_item{residual, Instance(residual), per_value, item.bindings,
                            item.depth + 1};
        bool viable = true;
        for (uint32_t e = 0; e < residual.num_edges(); ++e) {
          EdgeId original = *residual.SameNamedEdgeIn(item.query, e);
          const Relation& source = item.instance[original];
          if (source.attrs().Contains(skew_attr)) {
            Relation selected = Select(source, skew_attr, a);
            if (selected.empty()) {
              viable = false;
              break;
            }
            heavy_item.instance[e] = DropColumn(selected, skew_attr);
          } else {
            heavy_item.instance[e] = source;
          }
        }
        // Relations that consisted only of skew_attr must still be checked.
        for (uint32_t e = 0; viable && e < item.query.num_edges(); ++e) {
          if (item.query.edge(e).attrs == AttrSet::Single(skew_attr)) {
            if (Select(item.instance[e], skew_attr, a).empty()) viable = false;
          }
        }
        if (!viable) continue;
        heavy_item.bindings.emplace_back(skew_attr, a);
        out.spawned.push_back(std::move(heavy_item));
      }
    });

    // Harvest in frontier order: leaves accumulate, split items form the
    // next frontier in the order they were spawned.
    std::vector<WorkItem> next_frontier;
    for (Outcome& out : outcomes) {
      if (out.is_leaf) {
        max_load = std::max(max_load, out.leaf_max_load);
        servers += out.leaf_servers;
        leaf_trackers.push_back(std::move(*out.tracker));
        if (options.collect) {
          // The bindings restore every attribute removed along the residual
          // chain, so the schema is back to the full query's.
          if (out.local.attrs() == result.results.attrs()) {
            result.results.AppendAll(out.local);
            result.output_count += out.local.size();
          } else if (!out.local.empty()) {
            CP_CHECK(false) << "one-round result schema mismatch";
          }
        }
      } else {
        for (WorkItem& item : out.spawned) next_frontier.push_back(std::move(item));
      }
    }
    frontier = std::move(next_frontier);
  }

  result.max_load = max_load;
  result.servers_used = servers;
  result.rounds = 1;
  uint64_t tracker_servers = 0;
  for (const LoadTracker& leaf : leaf_trackers) tracker_servers += leaf.num_servers();
  result.load_tracker = LoadTracker(
      static_cast<uint32_t>(std::max<uint64_t>(1, tracker_servers)));
  uint32_t offset = 0;
  for (const LoadTracker& leaf : leaf_trackers) {
    result.load_tracker.Merge(leaf, offset, /*round_offset=*/0);
    offset += leaf.num_servers();
  }
  return result;
}

}  // namespace coverpack
