/// Tests for the invariant-audit subsystem: the SimulatorAuditor verifiers
/// (compiled in every build), the CP_AUDIT macro gating, and — in
/// COVERPACK_AUDIT builds — that the hot-path hooks in the tracker, the
/// primitives, the hypercube, and Rational actually fire.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "mpc/hypercube.h"
#include "mpc/primitives.h"
#include "query/catalog.h"
#include "util/audit.h"
#include "util/rational.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

using audit::SimulatorAuditor;

TEST(SimulatorAuditorTest, VerifyConservationAcceptsExactBalance) {
  SimulatorAuditor::ResetStats();
  SimulatorAuditor::VerifyConservation(100, 20, 120, "test");
  SimulatorAuditor::VerifyConservation(0, 0, 0, "test");
  EXPECT_GE(SimulatorAuditor::checks_performed(), 2u);
}

TEST(SimulatorAuditorTest, VerifyExchangeAcceptsBalancedVolumes) {
  SimulatorAuditor::VerifyExchange(42, 42, "test");
  SimulatorAuditor::VerifyExchange(0, 0, "test");
}

TEST(SimulatorAuditorTest, VerifyGridFitsAcceptsValidGrid) {
  SimulatorAuditor::VerifyGridFits({2, 3, 1}, 6, 8, "test");
  SimulatorAuditor::VerifyGridFits({1, 1}, 1, 1, "test");
}

TEST(SimulatorAuditorTest, VerifyNormalizedFractionAcceptsCanonicalForms) {
  SimulatorAuditor::VerifyNormalizedFraction(0, 1, "test");
  SimulatorAuditor::VerifyNormalizedFraction(-3, 7, "test");
  SimulatorAuditor::VerifyNormalizedFraction(5, 1, "test");
}

TEST(SimulatorAuditorDeathTest, LostVolumeAborts) {
  EXPECT_DEATH(SimulatorAuditor::VerifyConservation(100, 20, 119, "merge-under-test"),
               "conservation violated in merge-under-test");
}

TEST(SimulatorAuditorDeathTest, InventedVolumeAborts) {
  EXPECT_DEATH(SimulatorAuditor::VerifyConservation(100, 20, 121, "merge-under-test"),
               "conservation violated");
}

TEST(SimulatorAuditorDeathTest, ExchangeImbalanceAborts) {
  EXPECT_DEATH(SimulatorAuditor::VerifyExchange(10, 9, "route-under-test"),
               "exchange imbalance in route-under-test");
}

TEST(SimulatorAuditorDeathTest, OversizedGridAborts) {
  EXPECT_DEATH(SimulatorAuditor::VerifyGridFits({4, 4}, 16, 8, "grid-under-test"),
               "hypercube grid exceeds cluster");
}

TEST(SimulatorAuditorDeathTest, GridSizeMismatchAborts) {
  EXPECT_DEATH(SimulatorAuditor::VerifyGridFits({2, 2}, 5, 8, "grid-under-test"),
               "grid size mismatch");
}

TEST(SimulatorAuditorDeathTest, DenormalizedFractionAborts) {
  EXPECT_DEATH(SimulatorAuditor::VerifyNormalizedFraction(2, 4, "rational-under-test"),
               "not in lowest terms");
  EXPECT_DEATH(SimulatorAuditor::VerifyNormalizedFraction(1, -2, "rational-under-test"),
               "den <= 0");
  EXPECT_DEATH(SimulatorAuditor::VerifyNormalizedFraction(0, 3, "rational-under-test"),
               "zero rational not canonical");
}

TEST(AuditMacroTest, CompileGateMatchesBuildConfig) {
#ifdef COVERPACK_AUDIT
  EXPECT_TRUE(SimulatorAuditor::kCompiledIn);
#else
  EXPECT_FALSE(SimulatorAuditor::kCompiledIn);
#endif
}

TEST(AuditMacroTest, PassingAuditsNeverAbortAndCountOnlyWhenCompiledIn) {
  SimulatorAuditor::ResetStats();
  // In non-audit builds the macros swallow their arguments entirely.
  [[maybe_unused]] const int value = 3;
  CP_AUDIT(value == 3);
  CP_AUDIT_EQ(value, 3);
  CP_AUDIT_NE(value, 4);
  CP_AUDIT_LT(value, 4);
  CP_AUDIT_LE(value, 3);
  CP_AUDIT_GT(value, 2);
  CP_AUDIT_GE(value, 3);
  if (SimulatorAuditor::kCompiledIn) {
    EXPECT_EQ(SimulatorAuditor::checks_performed(), 7u);
  } else {
    EXPECT_EQ(SimulatorAuditor::checks_performed(), 0u);
  }
}

#ifdef COVERPACK_AUDIT

TEST(AuditMacroDeathTest, FailingAuditAbortsWhenCompiledIn) {
  const int value = 3;
  EXPECT_DEATH(CP_AUDIT_EQ(value, 4), "value == 4 \\(3 vs 4\\)");
}

// End-to-end: exercising the simulator in an audit build must drive the
// hot-path hooks (merges, partitions, hypercube routing, rational ops).
TEST(AuditIntegrationTest, SimulatorWorkloadFiresAuditHooks) {
  SimulatorAuditor::ResetStats();

  Cluster cluster(8);
  Hypergraph q = catalog::Line3();
  Rng rng(5);
  Relation left = workload::UniformRandom(q.edge(0).attrs, 64, 10, &rng);
  Relation right = workload::UniformRandom(q.edge(1).attrs, 64, 10, &rng);
  DistRelation dl = DistRelation::InitialPlacement(cluster, left);
  DistRelation dr = DistRelation::InitialPlacement(cluster, right);
  uint32_t round = 0;
  mpc::SemiJoinMpc(&cluster, dl, dr, &round);
  EXPECT_GT(SimulatorAuditor::checks_performed(), 0u);

  const uint64_t after_semijoin = SimulatorAuditor::checks_performed();
  LoadTracker parent(8);
  LoadTracker child(4);
  child.Add(0, 1, 5);
  parent.Merge(child, 0, 0);
  parent.MergeMapped(child, 0, [](uint32_t s) { return s % 4; });
  EXPECT_GT(SimulatorAuditor::checks_performed(), after_semijoin);

  const uint64_t after_merges = SimulatorAuditor::checks_performed();
  Rational r = Rational(6, 4) * Rational(2, 3) + Rational(1, 7);
  EXPECT_TRUE(r.IsNormalized());
  EXPECT_GT(SimulatorAuditor::checks_performed(), after_merges);
}

TEST(AuditIntegrationTest, HypercubeRunIsConservationAudited) {
  SimulatorAuditor::ResetStats();
  Cluster cluster(16);
  Hypergraph q = catalog::Triangle();
  Rng rng(11);
  Instance instance = workload::UniformInstance(q, 50, 8, &rng);
  mpc::ShareVector shares = mpc::OptimizeShares(q, cluster.p());
  mpc::HypercubeJoin(&cluster, q, instance, shares, 0, /*collect=*/true);
  EXPECT_GT(SimulatorAuditor::checks_performed(), 0u);
}

#endif  // COVERPACK_AUDIT

}  // namespace
}  // namespace coverpack
