/// \file thm5_optimal_acyclic.cc
/// \brief Validates Theorem 5: the multi-round algorithm computes any
/// alpha-acyclic join with load O(N / p^(1/rho*)) in O(1) rounds.
///
/// For each acyclic query we sweep p on a fixed-N instance, measure the
/// max per-round load of the optimal run, and fit the exponent of load vs
/// p on log-log scale; it must match -1/rho*. We also check the round
/// count stays constant and the allocated servers stay within a constant
/// of the budget p.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/acyclic_join.h"
#include "core/load_planner.h"
#include "experiments/runners.h"
#include "lp/covers.h"
#include "query/catalog.h"
#include "workload/generators.h"

namespace coverpack {
namespace bench {

namespace {

struct Workload {
  std::string name;
  Hypergraph query;
  uint64_t n;
};

}  // namespace

telemetry::RunReport RunThm5OptimalAcyclic(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  std::vector<Workload> workloads;
  workloads.push_back({"line3", catalog::Line3(), 20000});
  workloads.push_back({"path5", catalog::Path(5), 8000});
  workloads.push_back({"star4", catalog::Star(4), 8000});
  workloads.push_back({"star_dual3", catalog::StarDual(3), 20000});
  workloads.push_back({"alpha_not_berge", catalog::AlphaNotBerge(), 4000});
  workloads.push_back({"figure4", catalog::Figure4Query(), 2000});

  std::vector<uint32_t> ps{4, 16, 64, 256, 1024};
  bool all_ok = true;
  {
    telemetry::JsonValue p_grid = telemetry::JsonValue::Array();
    for (uint32_t p : ps) p_grid.Append(telemetry::JsonValue::Uint(p));
    report.params.Set("p_sweep", std::move(p_grid));
    report.AddParam("workloads", static_cast<uint64_t>(workloads.size()));
  }

  for (const auto& w : workloads) {
    telemetry::MetricsRegistry::ScopedTimer workload_timer(&report.metrics,
                                                           "workload/" + w.name);
    Rational rho = RhoStar(w.query);
    double theory_exponent = -1.0 / rho.ToDouble();
    Instance instance = workload::MatchingInstance(w.query, w.n);

    TablePrinter table({"p", "L planned", "L measured", "rounds", "servers used",
                        "theory N/p^(1/rho*)"});
    std::vector<double> xs;
    std::vector<double> ys;
    uint32_t max_rounds = 0;
    bool servers_ok = true;
    for (uint32_t p : ps) {
      AcyclicRunOptions options;
      options.policy = RunPolicy::kOptimal;
      options.collect = false;
      options.p = p;
      AcyclicRunResult run = ComputeAcyclicJoin(w.query, instance, options);
      ProfileRun(report, w.name + "/p" + std::to_string(p), run.load_tracker);
      double theory = static_cast<double>(w.n) /
                      std::pow(static_cast<double>(p), 1.0 / rho.ToDouble());
      table.AddRow({std::to_string(p), std::to_string(run.load_threshold),
                    std::to_string(run.max_load), std::to_string(run.rounds),
                    std::to_string(run.servers_used), FormatDouble(theory, 1)});
      xs.push_back(static_cast<double>(p));
      ys.push_back(static_cast<double>(run.max_load));
      max_rounds = std::max(max_rounds, run.rounds);
      if (run.servers_used > 16ull * p + 16) servers_ok = false;
    }
    std::cout << "--- " << w.name << " (rho* = " << rho << ", N = " << w.n << ")\n";
    table.Print(std::cout);
    PowerLawFit fit = FitPowerLaw(xs, ys);
    bool exponent_ok =
        ReportExponent(report, w.name, fit.slope, theory_exponent, /*tolerance=*/0.12);
    std::cout << "rounds stay constant across the sweep: max " << max_rounds
              << "; servers within 16x budget: " << (servers_ok ? "yes" : "NO") << "\n\n";
    all_ok = all_ok && exponent_ok && servers_ok;
  }

  FinishReport(report, all_ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
