#include "service/scheduler.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace coverpack {
namespace service {

LeaseManager::LeaseManager(uint32_t total_servers) : total_(total_servers) {
  CP_CHECK(total_ > 0);
  free_[0] = total_;
}

std::optional<SubClusterLease> LeaseManager::Acquire(uint32_t size) {
  CP_CHECK(size > 0);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < size) continue;
    SubClusterLease lease{it->first, size};
    const uint32_t remaining = it->second - size;
    const uint32_t new_start = it->first + size;
    free_.erase(it);
    if (remaining > 0) free_[new_start] = remaining;
    leased_ += size;
    peak_ = std::max(peak_, leased_);
    return lease;
  }
  return std::nullopt;
}

void LeaseManager::Release(const SubClusterLease& lease) {
  CP_CHECK(lease.size > 0);
  CP_CHECK_LE(lease.first_server + lease.size, total_);
  CP_CHECK_LE(lease.size, leased_);
  uint32_t start = lease.first_server;
  uint32_t length = lease.size;
  // Coalesce with the successor interval, then with the predecessor.
  auto next = free_.lower_bound(start);
  if (next != free_.end() && next->first == start + length) {
    length += next->second;
    free_.erase(next);
  }
  if (!free_.empty()) {
    auto prev = free_.lower_bound(start);
    if (prev != free_.begin()) {
      --prev;
      if (prev->first + prev->second == start) {
        start = prev->first;
        length += prev->second;
        free_.erase(prev);
      }
    }
  }
  free_[start] = length;
  leased_ -= lease.size;
}

void SimEventQueue::Push(SimEvent event) {
  event.seq = next_seq_++;
  heap_.push(event);
}

SimEvent SimEventQueue::PopMin() {
  CP_CHECK(!heap_.empty());
  SimEvent event = heap_.top();
  heap_.pop();
  return event;
}

}  // namespace service
}  // namespace coverpack
