// cplint fixture: histogram sampling driven by ambient randomness. In
// src/planner/ this would make two stats builds of the same relation
// disagree, so the same query could plan differently on every run and the
// differential corpus would not be replayable from its seed.
#include <random>

unsigned SampleRowForHistogram(unsigned num_rows) {
  std::random_device entropy;
  std::mt19937_64 gen;
  return static_cast<unsigned>((gen() ^ entropy()) % num_rows);
}

int LegacyBucketJitter() { return rand(); }
