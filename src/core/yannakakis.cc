#include "core/yannakakis.h"

#include <algorithm>

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "mpc/primitives.h"
#include "query/join_tree.h"
#include "relation/operators.h"
#include "util/logging.h"

namespace coverpack {

namespace {

/// Joins two distributed relations by hash-repartitioning both on their
/// shared attributes (must be nonempty) and joining locally.
DistRelation JoinExchange(Cluster* cluster, const DistRelation& left, const DistRelation& right,
                          uint32_t* round) {
  AttrSet shared = left.attrs().Intersect(right.attrs());
  CP_CHECK(!shared.empty()) << "join tree edge without shared attributes";
  DistRelation lp = mpc::HashPartition(cluster, left, shared, *round);
  DistRelation rp = mpc::HashPartition(cluster, right, shared, *round);
  *round += 1;
  DistRelation output(left.attrs().Union(right.attrs()), cluster->p());
  for (uint32_t s = 0; s < cluster->p(); ++s) {
    output.shard(s) = HashJoin(lp.shard(s), rp.shard(s));
  }
  return output;
}

}  // namespace

YannakakisResult ComputeYannakakis(const Hypergraph& query, const Instance& instance,
                                   uint32_t p) {
  instance.CheckAgainst(query);
  auto tree = JoinTree::Build(query);
  CP_CHECK(tree.has_value()) << "Yannakakis requires an alpha-acyclic query";

  Cluster cluster(p);
  uint32_t round = 0;

  // Initial placement is free; the semi-join reduction is charged for real.
  std::vector<DistRelation> dist;
  dist.reserve(query.num_edges());
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    dist.push_back(DistRelation::InitialPlacement(cluster, instance[e]));
  }

  // Top-down order per component (parents before children).
  std::vector<uint32_t> top_down;
  for (uint32_t root : tree->Roots()) {
    std::vector<uint32_t> stack{root};
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      top_down.push_back(u);
      for (uint32_t c : tree->children(u)) stack.push_back(c);
    }
  }

  // Phase 1: full semi-join reduction (upward then downward pass).
  for (auto it = top_down.rbegin(); it != top_down.rend(); ++it) {
    uint32_t node = *it;
    uint32_t parent = tree->parent(node);
    if (parent != JoinTree::kNoParent) {
      dist[parent] = mpc::SemiJoinMpc(&cluster, dist[parent], dist[node], &round);
    }
  }
  for (uint32_t node : top_down) {
    for (uint32_t child : tree->children(node)) {
      dist[child] = mpc::SemiJoinMpc(&cluster, dist[child], dist[node], &round);
    }
  }

  // Phase 2: bottom-up joins. subtree[n] accumulates the join of the
  // subtree rooted at n.
  std::vector<DistRelation> subtree = dist;
  for (auto it = top_down.rbegin(); it != top_down.rend(); ++it) {
    uint32_t node = *it;
    for (uint32_t child : tree->children(node)) {
      subtree[node] = JoinExchange(&cluster, subtree[node], subtree[child], &round);
    }
  }

  // Cartesian product across components happens at emission (zero-cost in
  // the model); we combine the gathered per-component results.
  YannakakisResult result;
  Relation combined;
  bool first = true;
  for (uint32_t root : tree->Roots()) {
    Relation component = subtree[root].Gather();
    if (first) {
      combined = std::move(component);
      first = false;
    } else {
      combined = HashJoin(combined, component);
    }
  }
  result.results = std::move(combined);
  result.output_count = result.results.size();
  result.max_load = cluster.tracker().MaxLoad();
  result.rounds = round;
  result.total_communication = cluster.tracker().TotalCommunication();
  return result;
}

}  // namespace coverpack
