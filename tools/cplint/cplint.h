/// \file cplint.h
/// \brief Project-invariant static analyzer for the coverpack tree.
///
/// cplint is a dependency-free, token/line-level linter (no libclang) that
/// enforces the repo-specific invariants which generic tooling cannot see:
/// the Exchange layer as the only load-charging site, determinism of every
/// run at any thread count, and the pairing of runtime audit discipline
/// with compile-time thread annotations. It is deliberately simple — a
/// comment/string-stripping scanner plus per-rule regexes — because every
/// rule it enforces is a *global textual* invariant ("this call only in
/// that file", "this token never without that one") rather than a
/// semantic property; the semantic layers are clang-tidy, TSan, CP_AUDIT,
/// and -Wthread-safety (DESIGN.md §4.8).
///
/// Rules (each suppressible per line with `// cplint: allow(<rule>)` on
/// the offending line or the line above):
///
///  * charge-choke-point    — LoadTracker charging (`*tracker*.Add(...)`)
///                            appears only in src/mpc/exchange.cc.
///  * no-wall-clock         — no std::chrono::system_clock, time(),
///                            clock(), localtime/gmtime/strftime, or
///                            __DATE__/__TIME__ outside the telemetry
///                            timer internals; wall-clock reads anywhere
///                            else would leak into reports and break
///                            bit-identical reruns.
///  * no-unseeded-rng       — no std::random_device, rand()/srand(),
///                            drand48 family, default_random_engine, or a
///                            std::mt19937 constructed without a
///                            SplitSeed-derived seed; all randomness must
///                            flow from the experiment seed.
///  * no-unordered-iteration— no range-for over an unordered_map/set
///                            declared in the same file; iteration order
///                            is implementation-defined, the classic
///                            cross-thread nondeterminism leak. Sites
///                            whose order provably cannot escape (pure
///                            commutative accumulation, or output sorted
///                            immediately after) carry an allow() with a
///                            rationale.
///  * audit-pairing         — a file declaring a mutex member must carry
///                            clang thread-safety annotations (CP_GUARDED_BY
///                            et al.), pairing the runtime CP_AUDIT mutex
///                            discipline with the compile-time analysis.
///  * include-hygiene       — headers include what they use from util/
///                            (CP_CHECK* → util/logging.h, CP_AUDIT* →
///                            util/audit.h, Mutex/MutexLock → util/mutex.h,
///                            CP_GUARDED_BY → util/thread_annotations.h,
///                            SplitSeed/Rng → util/random.h, HashCombine →
///                            util/hash.h, ThreadPool → util/thread_pool.h).
///  * no-per-row-append     — no Relation::AppendRow call in src/mpc/ or
///                            src/query/: those layers are on every
///                            experiment's critical path, and the columnar
///                            substrate's contract is count-first bulk
///                            appends (AppendRows/AppendUninitialized) —
///                            one growth check and one contiguous copy per
///                            operator call instead of one per tuple.
///
/// Known limits, by design of a line-level tool: analysis is per file (an
/// unordered container returned by a function in another file is not
/// tracked), range-for headers must fit on one line, and type aliases are
/// not resolved. The fixtures in tests/cplint_fixtures/ pin the exact
/// supported shapes.

#ifndef COVERPACK_TOOLS_CPLINT_CPLINT_H_
#define COVERPACK_TOOLS_CPLINT_CPLINT_H_

#include <string>
#include <vector>

namespace coverpack {
namespace cplint {

/// One rule violation at a specific line.
struct Finding {
  std::string file;
  size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

/// Name and one-line summary of a rule, for --list-rules and docs.
struct RuleInfo {
  std::string name;
  std::string summary;
};

/// The rule catalog, in canonical order.
const std::vector<RuleInfo>& Rules();

/// True iff `name` is a known rule.
bool IsRule(const std::string& name);

/// Lints one file's `content` as if it lived at `path` (forward-slash
/// separated; file-scoped exemptions match on path suffix, e.g.
/// "mpc/exchange.cc"). `rules` selects a subset; empty means all rules.
/// Findings suppressed by `// cplint: allow(<rule>)` are already removed.
std::vector<Finding> LintContent(const std::string& path, const std::string& content,
                                 const std::vector<std::string>& rules);

/// Reads and lints one file from disk. Unreadable files produce a single
/// finding under the pseudo-rule "io-error".
std::vector<Finding> LintFile(const std::string& path, const std::vector<std::string>& rules);

/// Expands a file-or-directory path into the sorted list of .h/.cc files
/// beneath it (a plain file is returned as-is if it has a lintable
/// extension).
std::vector<std::string> CollectSources(const std::string& path);

/// Strips comments and string/char-literal contents while preserving the
/// line structure (exposed for tests).
std::vector<std::string> StripForAnalysis(const std::string& content);

}  // namespace cplint
}  // namespace coverpack

#endif  // COVERPACK_TOOLS_CPLINT_CPLINT_H_
