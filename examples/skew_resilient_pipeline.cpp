/// \file skew_resilient_pipeline.cpp
/// \brief Algorithm bake-off on a skewed analytics workload.
///
/// Scenario: a star-schema analytics join over a heavy-tailed fact table
/// (one celebrity user owns a large fraction of the events). We compare
/// four engines at the same server count:
///   1. vanilla one-round HyperCube          (collapses under skew),
///   2. skew-aware one-round (BinHC-style)   (recovers, one round),
///   3. parallel Yannakakis                  (pays for the output),
///   4. the paper's multi-round algorithm    (Theorem 5 load).
///
///   $ ./skew_resilient_pipeline

#include <iostream>

#include "core/acyclic_join.h"
#include "core/one_round.h"
#include "core/yannakakis.h"
#include "query/parser.h"
#include "relation/oracle.h"
#include "util/table_printer.h"
#include "workload/generators.h"

int main() {
  using namespace coverpack;

  // Events(User, Item) |><| Profiles(User, Region) |><| Items(Item, Cat).
  Hypergraph query = ParseQuery("Events(User,Item), Profiles(User,Region), Items(Item,Cat)");
  std::cout << "workload: " << query.ToString() << "\n";

  // Heavy-tailed events: celebrity user 0 produces 30% of all events, and
  // their profile is multi-homed across thousands of regions, so the join
  // key User is heavy on *both* sides — the case that breaks a one-round
  // hash grid (every server of user 0's slice receives all their rows).
  uint64_t n = 20000;
  Rng rng(7);
  Instance instance(query);
  {
    AttrSet events_attrs = query.edge(0).attrs;
    Relation& events = instance[0];
    for (Value i = 0; i < n * 3 / 10; ++i) {
      events.AppendRow({0, i % 8000});  // the celebrity user, distinct items
    }
    Relation tail = workload::Zipf(events_attrs, n - n * 3 / 10, 3000, 0.7, &rng);
    for (size_t i = 0; i < tail.size(); ++i) events.AppendRow(tail.row(i));
    events.Dedup();
  }
  for (Value r = 0; r < 8000; ++r) instance[1].AppendRow({0, r});  // celebrity regions
  for (Value u = 1; u < 3000; ++u) instance[1].AppendRow({u, u % 40});
  for (Value i = 0; i < 8000; ++i) instance[2].AppendRow({i, i % 25});

  uint32_t p = 64;
  uint64_t out = JoinCount(query, instance);
  std::cout << "N = " << instance.MaxRelationSize() << ", OUT = " << out << ", p = " << p
            << "\n\n";

  TablePrinter table({"engine", "rounds", "max load", "notes"});

  OneRoundResult vanilla = ComputeOneRoundVanilla(query, instance, p, /*collect=*/false);
  table.AddRow({"hypercube (vanilla)", "1", std::to_string(vanilla.max_load),
                "celebrity user lands on one grid slice"});

  OneRoundOptions or_options;
  or_options.collect = false;
  OneRoundResult aware = ComputeOneRoundSkewAware(query, instance, p, or_options);
  table.AddRow({"one-round skew-aware", "1", std::to_string(aware.max_load),
                "heavy users split into residual hypercubes"});

  YannakakisResult yan = ComputeYannakakis(query, instance, p);
  table.AddRow({"parallel yannakakis", std::to_string(yan.rounds),
                std::to_string(yan.max_load), "communicates intermediate results"});

  AcyclicRunOptions options;
  options.policy = RunPolicy::kOptimal;
  options.collect = false;
  options.p = p;
  AcyclicRunResult multi = ComputeAcyclicJoin(query, instance, options);
  table.AddRow({"multi-round (Theorem 5)", std::to_string(multi.rounds),
                std::to_string(multi.max_load),
                "worst-case optimal: N / p^(1/rho*) = N / p^(1/2)"});

  table.Print(std::cout);

  bool resilient = aware.max_load < vanilla.max_load;
  std::cout << "\nskew handling pays off: " << (resilient ? "yes" : "no")
            << "; the multi-round engine holds the Theorem 5 guarantee regardless of skew.\n";
  return 0;
}
