/// \file cluster_elastic.cc
/// \brief Measures the heterogeneous/elastic cluster subsystem: speed-aware
/// placement vs the uniform baseline, and round-boundary membership changes
/// with audited state migration.
///
/// Claims checked, per speed spec and schedule:
///
///  1. **Placement dominance.** On every (p, speed spec) instance the
///     speed-aware placement's makespan is <= the uniform (identity)
///     placement's makespan — guaranteed by construction (identity is
///     always a candidate) and re-measured here — and each round's
///     makespan respects the proportional-share lower bound
///     T_r / sum(speeds).
///  2. **Exponent preserved.** The speed-aware makespan keeps Theorem 5's
///     N/p^(1/rho*) exponent on every speed spec: heterogeneity changes
///     constants, never the shape.
///  3. **Elastic correctness.** Join/leave schedules conserve every row
///     through the rebalancing Exchanges; a schedule whose events never
///     fire inside the run is byte-identical to the fixed-p run; and
///     speed-aware routing never loses to speed-oblivious routing on the
///     actual (heterogeneous) fleet.
///  4. **Chaos composition.** Re-running an elastic pipeline under a
///     crash-storm FaultPlan leaves the tracker and the final distributed
///     state bit-identical — migrations recover exactly like algorithm
///     exchanges.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster_profile.h"
#include "cluster/elastic.h"
#include "cluster/routing.h"
#include "core/acyclic_join.h"
#include "experiments/runners.h"
#include "lp/covers.h"
#include "query/catalog.h"
#include "resilience/cost_model.h"
#include "resilience/fault_injector.h"
#include "util/logging.h"
#include "workload/generators.h"

namespace coverpack {
namespace bench {

namespace {

ClusterBenchOverrides g_cluster_overrides;

bool TrackersEqual(const LoadTracker& a, const LoadTracker& b) {
  if (a.num_servers() != b.num_servers() || a.num_rounds() != b.num_rounds()) return false;
  for (uint32_t r = 0; r < a.num_rounds(); ++r) {
    for (uint32_t s = 0; s < a.num_servers(); ++s) {
      if (a.At(r, s) != b.At(r, s)) return false;
    }
  }
  return true;
}

bool SameElasticState(const cluster::ElasticRunResult& a,
                      const cluster::ElasticRunResult& b) {
  return a.content_hash == b.content_hash && a.final_rows == b.final_rows &&
         a.final_shard_sizes == b.final_shard_sizes && TrackersEqual(a.tracker, b.tracker);
}

/// Equality modulo idle slots: an unfired schedule reserves extra slot ids
/// that never hold a row or a load, so comparisons against the fixed-p run
/// pad the narrower tracker/shard list with zeros.
bool SameElasticStateModuloIdle(const cluster::ElasticRunResult& a,
                                const cluster::ElasticRunResult& b) {
  if (a.content_hash != b.content_hash || a.final_rows != b.final_rows) return false;
  const size_t shards = std::max(a.final_shard_sizes.size(), b.final_shard_sizes.size());
  for (size_t s = 0; s < shards; ++s) {
    const size_t sa = s < a.final_shard_sizes.size() ? a.final_shard_sizes[s] : 0;
    const size_t sb = s < b.final_shard_sizes.size() ? b.final_shard_sizes[s] : 0;
    if (sa != sb) return false;
  }
  if (a.tracker.num_rounds() != b.tracker.num_rounds()) return false;
  const uint32_t servers = std::max(a.tracker.num_servers(), b.tracker.num_servers());
  for (uint32_t r = 0; r < a.tracker.num_rounds(); ++r) {
    for (uint32_t s = 0; s < servers; ++s) {
      const uint64_t la = s < a.tracker.num_servers() ? a.tracker.At(r, s) : 0;
      const uint64_t lb = s < b.tracker.num_servers() ? b.tracker.At(r, s) : 0;
      if (la != lb) return false;
    }
  }
  return true;
}

}  // namespace

void SetClusterBenchOverrides(const ClusterBenchOverrides& overrides) {
  g_cluster_overrides = overrides;
}

telemetry::RunReport RunClusterElastic(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  // --speeds / --elastic narrow the sweep to one point; defaults cover the
  // skew spectrum and the join/leave/mixed schedules.
  std::vector<std::string> spec_texts{"uniform", "halves:4", "geom:8", "seeded:7"};
  if (!g_cluster_overrides.speeds.empty()) spec_texts = {g_cluster_overrides.speeds};
  std::vector<std::string> schedule_texts{"none", "+2@2", "-2@3", "+2@2,-3@4"};
  if (!g_cluster_overrides.elastic.empty()) schedule_texts = {g_cluster_overrides.elastic};

  std::vector<cluster::SpeedSpec> specs;
  for (const std::string& text : spec_texts) {
    auto spec = cluster::ParseSpeedSpec(text);
    CP_CHECK(spec.has_value());
    specs.push_back(*spec);
  }
  std::vector<cluster::ElasticSpec> schedules;
  for (const std::string& text : schedule_texts) {
    auto schedule = cluster::ParseElasticSpec(text);
    CP_CHECK(schedule.has_value());
    schedules.push_back(*schedule);
  }

  const Hypergraph query = catalog::Line3();
  const uint64_t n = 20000;
  const Rational rho = RhoStar(query);
  const double theory_exponent = -1.0 / rho.ToDouble();
  const Instance instance = workload::MatchingInstance(query, n);
  const std::vector<uint32_t> ps{4, 16, 64, 256};

  report.AddParam("query", query.ToString());
  report.AddParam("N", n);
  report.AddParam("speed_specs", static_cast<uint64_t>(specs.size()));
  report.AddParam("schedules", static_cast<uint64_t>(schedules.size()));

  // --- Part A: speed-aware placement over the Line3 acyclic sweep. The
  // baseline run is speed-independent, so one run per p serves every spec.
  bool dominance_ok = true;
  bool lower_bound_ok = true;
  bool overload_ok = true;  // satellite: vector-speed SimulateMakespan agrees
  bool exponents_ok = true;
  uint64_t lpt_wins = 0;

  std::cout << "--- placement: line3 acyclic (rho* = " << rho << ", N = " << n << ")\n";
  TablePrinter placement_table(
      {"p", "speeds", "identity makespan", "chosen makespan", "speedup", "lpt won"});
  std::vector<AcyclicRunResult> baselines;
  for (uint32_t p : ps) {
    AcyclicRunOptions options;
    options.policy = RunPolicy::kOptimal;
    options.collect = false;
    options.p = p;
    baselines.push_back(ComputeAcyclicJoin(query, instance, options));
  }
  for (const cluster::SpeedSpec& spec : specs) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (size_t pi = 0; pi < ps.size(); ++pi) {
      const uint32_t p = ps[pi];
      const AcyclicRunResult& baseline = baselines[pi];
      // Share rounding can charge a few more servers than the nominal p;
      // the fleet is sized to what the tracker actually used.
      const cluster::ClusterProfile profile(baseline.load_tracker.num_servers(), spec,
                                            cluster::ElasticSpec{});
      const std::vector<double> speeds =
          profile.NormalizedActiveSpeeds(profile.EpochForRound(0));

      const cluster::PlacementChoice choice =
          cluster::ChoosePlacement(baseline.load_tracker, speeds);
      if (choice.makespan > choice.identity_makespan + 1e-9) dominance_ok = false;
      if (choice.lpt_won) ++lpt_wins;

      // Satellite 1 in anger: the standalone-speed SimulateMakespan overload
      // must agree with the identity fold of the placement layer.
      const resilience::MakespanBreakdown direct =
          resilience::SimulateMakespan(baseline.load_tracker, speeds);
      if (std::abs(direct.makespan - choice.identity_makespan) >
          1e-6 * std::max(1.0, choice.identity_makespan)) {
        overload_ok = false;
      }

      // Proportional-share lower bound: no round can finish faster than its
      // total work spread across the whole fleet's aggregate speed.
      const cluster::FoldedMakespan folded = cluster::PlacementMakespan(
          baseline.load_tracker, choice.assignment, speeds);
      double speed_sum = 0.0;
      for (double s : speeds) speed_sum += s;
      for (uint32_t r = 0; r < baseline.load_tracker.num_rounds(); ++r) {
        uint64_t round_total = 0;
        for (uint32_t s = 0; s < baseline.load_tracker.num_servers(); ++s) {
          round_total += baseline.load_tracker.At(r, s);
        }
        const double bound = static_cast<double>(round_total) / speed_sum;
        if (folded.round_makespans[r] + 1e-9 < bound) lower_bound_ok = false;
      }

      xs.push_back(static_cast<double>(p));
      ys.push_back(choice.makespan);
      placement_table.AddRow(
          {std::to_string(p), spec.ToString(), FormatDouble(choice.identity_makespan, 1),
           FormatDouble(choice.makespan, 1),
           FormatDouble(choice.identity_makespan / std::max(choice.makespan, 1e-12), 3),
           choice.lpt_won ? "yes" : "no"});
    }
    const PowerLawFit fit = FitPowerLaw(xs, ys);
    exponents_ok = ReportExponent(report, "placement_makespan/" + spec.ToString(),
                                  fit.slope, theory_exponent, /*tolerance=*/0.15) &&
                   exponents_ok;
  }
  placement_table.Print(std::cout);
  report.metrics.AddCounter("placement.lpt_wins", lpt_wins);

  // --- Part B: elastic pipelines across the schedule sweep.
  bool conservation_ok = true;
  bool aware_ok = true;   // speed-aware routing <= oblivious on the real fleet
  bool fixed_ok = true;   // unfired schedules byte-identical to fixed p
  bool chaos_ok = true;   // crash storm leaves bytes identical
  bool migrated_ok = true;  // every non-trivial schedule actually migrated

  resilience::FaultSpec storm;
  storm.crash_rate = 0.10;
  storm.drop_rate = 0.002;
  storm.duplicate_rate = 0.002;
  storm.seed = ExperimentSeed(0xC1A05);
  report.AddParam("chaos_seed", storm.seed);

  std::cout << "--- elastic: base_p = 8, rows = 10000, 6 partition rounds\n";
  TablePrinter elastic_table({"speeds", "schedule", "epochs", "migrated", "aware makespan",
                              "oblivious makespan", "identical under chaos"});
  for (const cluster::SpeedSpec& spec : specs) {
    for (const cluster::ElasticSpec& schedule : schedules) {
      cluster::ElasticRunConfig config;
      config.speeds = spec;
      config.schedule = schedule;
      config.seed = ExperimentSeed(0x0e1a57ull);
      const cluster::ClusterProfile profile(config.base_p, spec, schedule);

      const cluster::ElasticRunResult aware = cluster::RunElasticPipeline(config);
      if (aware.final_rows != config.rows) conservation_ok = false;
      if (!schedule.empty() && aware.epochs > 1 && aware.tuples_migrated == 0) {
        migrated_ok = false;
      }

      cluster::ElasticRunConfig oblivious_config = config;
      oblivious_config.speed_aware = false;
      const cluster::ElasticRunResult oblivious =
          cluster::RunElasticPipeline(oblivious_config);
      if (oblivious.final_rows != config.rows) conservation_ok = false;

      // Both runs are costed on the *actual* fleet speeds; the speed-aware
      // router must never lose to the uniform-share baseline.
      std::vector<double> slot_speeds;
      for (uint32_t slot = 0; slot < profile.num_slots(); ++slot) {
        slot_speeds.push_back(profile.SpeedOfSlot(slot));
      }
      const resilience::MakespanBreakdown aware_span =
          resilience::SimulateMakespan(aware.tracker, slot_speeds);
      const resilience::MakespanBreakdown oblivious_span =
          resilience::SimulateMakespan(oblivious.tracker, slot_speeds);
      if (aware_span.makespan > oblivious_span.makespan + 1e-9) aware_ok = false;

      // Elastic machinery with no fired events must be byte-invisible.
      if (schedule.empty()) {
        cluster::ElasticRunConfig unfired_config = config;
        auto unfired_schedule = cluster::ParseElasticSpec("+3@99");
        CP_CHECK(unfired_schedule.has_value());
        unfired_config.schedule = *unfired_schedule;
        const cluster::ElasticRunResult unfired =
            cluster::RunElasticPipeline(unfired_config);
        if (!SameElasticStateModuloIdle(aware, unfired)) fixed_ok = false;
      }

      // Chaos composition: migrations recover like any other exchange.
      cluster::ElasticRunResult stormy;
      {
        resilience::ScopedFaultInjection injection(storm);
        stormy = cluster::RunElasticPipeline(config);
      }
      const bool chaos_identical = SameElasticState(aware, stormy);
      chaos_ok = chaos_ok && chaos_identical;

      elastic_table.AddRow({spec.ToString(), schedule.ToString(),
                            std::to_string(aware.epochs),
                            std::to_string(aware.tuples_migrated),
                            FormatDouble(aware_span.makespan, 1),
                            FormatDouble(oblivious_span.makespan, 1),
                            chaos_identical ? "yes" : "NO"});
    }
  }
  elastic_table.Print(std::cout);

  std::cout << "placement dominance on every instance: " << (dominance_ok ? "yes" : "NO")
            << "; proportional lower bound: " << (lower_bound_ok ? "yes" : "NO")
            << "; cost-model overloads agree: " << (overload_ok ? "yes" : "NO") << "\n";
  std::cout << "rows conserved through every migration: " << (conservation_ok ? "yes" : "NO")
            << "; schedules fired: " << (migrated_ok ? "yes" : "NO")
            << "; aware <= oblivious: " << (aware_ok ? "yes" : "NO")
            << "; unfired schedule byte-identical: " << (fixed_ok ? "yes" : "NO")
            << "; chaos byte-identical: " << (chaos_ok ? "yes" : "NO") << "\n";

  FinishReport(report, dominance_ok && lower_bound_ok && overload_ok && exponents_ok &&
                           conservation_ok && migrated_ok && aware_ok && fixed_ok &&
                           chaos_ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
