/// \file quickstart.cpp
/// \brief Five-minute tour: parse a join query, generate data, run the
/// paper's worst-case-optimal multi-round MPC algorithm, and inspect the
/// measured complexity.
///
///   $ ./quickstart
///
/// See examples/query_analyzer.cpp for the analysis toolkit and
/// examples/skew_resilient_pipeline.cpp for an algorithm bake-off.

#include <iostream>

#include "core/acyclic_join.h"
#include "lp/covers.h"
#include "query/parser.h"
#include "query/properties.h"
#include "relation/oracle.h"
#include "workload/generators.h"

int main() {
  using namespace coverpack;

  // 1. Define a join query with the textual DSL. This is the line-3 join
  //    from the paper's introduction: acyclic but not r-hierarchical.
  Hypergraph query = ParseQuery("Follows(UserA,UserB), Posts(UserB,ItemC), Tags(ItemC,TagD)");
  std::cout << "query:          " << query.ToString() << "\n";
  std::cout << "classification: " << ClassificationString(query) << "\n";
  std::cout << "rho* = " << RhoStar(query) << ", tau* = " << TauStar(query)
            << ", psi* = " << EdgeQuasiPackingNumber(query) << "\n\n";

  // 2. Generate a Zipf-skewed instance: 15,000 tuples per relation.
  Rng rng(/*seed=*/2021);
  Instance instance = workload::ZipfInstance(query, 15000, 8000, /*skew=*/0.5, &rng);
  std::cout << "instance: " << instance.TotalSize() << " tuples, N = "
            << instance.MaxRelationSize() << "\n";

  // 3. Run the multi-round MPC algorithm (Theorem 5: load O(N / p^(1/rho*))
  //    in O(1) rounds) on 64 simulated servers.
  AcyclicRunOptions options;
  options.policy = RunPolicy::kOptimal;
  options.collect = true;  // materialize results (small demo)
  options.p = 64;
  options.trace = true;    // record the decomposition decisions
  AcyclicRunResult run = ComputeAcyclicJoin(query, instance, options);

  std::cout << "\ndecomposition trace:\n" << TraceToString(run.trace);

  std::cout << "\nMPC run on p = 64 servers:\n";
  std::cout << "  join results:   " << run.output_count << "\n";
  std::cout << "  load threshold: " << run.load_threshold << " (planned per Theorem 4)\n";
  std::cout << "  measured load:  " << run.max_load << " tuples/server/round\n";
  std::cout << "  rounds:         " << run.rounds << "\n";
  std::cout << "  servers used:   " << run.servers_used << "\n";

  // 4. Verify against the sequential worst-case-optimal oracle.
  Relation expected = GenericJoin(query, instance);
  std::cout << "\noracle check: " << (run.results.SameContentAs(expected) ? "PASS" : "FAIL")
            << " (" << expected.size() << " results)\n";
  return run.results.SameContentAs(expected) ? 0 : 1;
}
