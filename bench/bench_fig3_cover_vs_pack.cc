/// \file bench_fig3_cover_vs_pack.cc
/// \brief Thin wrapper: the experiment body lives in
/// bench/experiments/fig3_cover_vs_pack.cc and is registered in the experiment
/// registry, so the unified driver (coverpack_bench) and this historical
/// one-display binary share one implementation.

#include "experiments/experiments.h"

int main() { return coverpack::bench::RunExperimentStandalone("fig3_cover_vs_pack"); }
