/// \file attr_set.h
/// \brief Compact set of attribute ids, backed by a 64-bit mask.
///
/// Join queries in this library have constant size (the paper assumes data
/// complexity), so a query never has more than 64 attributes; a bitmask
/// makes subset tests, residuals Q_x and the power-set enumerations of
/// Theorem 1 / Theorem 3 cheap and allocation-free.

#ifndef COVERPACK_QUERY_ATTR_SET_H_
#define COVERPACK_QUERY_ATTR_SET_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace coverpack {

/// Identifies an attribute within one Hypergraph (dense, 0-based).
using AttrId = uint32_t;

/// A set of AttrId drawn from [0, 64).
class AttrSet {
 public:
  constexpr AttrSet() : bits_(0) {}
  constexpr explicit AttrSet(uint64_t bits) : bits_(bits) {}

  /// The set {id}.
  static AttrSet Single(AttrId id) {
    CP_DCHECK(id < 64);
    return AttrSet(uint64_t{1} << id);
  }

  /// The set {0, 1, ..., n-1}.
  static AttrSet FirstN(uint32_t n) {
    CP_DCHECK(n <= 64);
    return AttrSet(n == 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1);
  }

  static AttrSet FromIds(const std::vector<AttrId>& ids) {
    AttrSet set;
    for (AttrId id : ids) set.Insert(id);
    return set;
  }

  uint64_t bits() const { return bits_; }
  bool empty() const { return bits_ == 0; }
  uint32_t size() const { return static_cast<uint32_t>(std::popcount(bits_)); }

  bool Contains(AttrId id) const { return (bits_ >> id) & 1; }
  void Insert(AttrId id) {
    CP_DCHECK(id < 64);
    bits_ |= uint64_t{1} << id;
  }
  void Remove(AttrId id) { bits_ &= ~(uint64_t{1} << id); }

  bool IsSubsetOf(AttrSet other) const { return (bits_ & ~other.bits_) == 0; }
  bool Intersects(AttrSet other) const { return (bits_ & other.bits_) != 0; }

  AttrSet Union(AttrSet other) const { return AttrSet(bits_ | other.bits_); }
  AttrSet Intersect(AttrSet other) const { return AttrSet(bits_ & other.bits_); }
  AttrSet Minus(AttrSet other) const { return AttrSet(bits_ & ~other.bits_); }

  /// Lowest attribute id in the set; set must be nonempty.
  AttrId First() const {
    CP_DCHECK(!empty());
    return static_cast<AttrId>(std::countr_zero(bits_));
  }

  /// Expands to an ordered vector of ids.
  std::vector<AttrId> ToVector() const {
    std::vector<AttrId> ids;
    ids.reserve(size());
    uint64_t bits = bits_;
    while (bits != 0) {
      ids.push_back(static_cast<AttrId>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
    return ids;
  }

  bool operator==(AttrSet other) const { return bits_ == other.bits_; }
  bool operator!=(AttrSet other) const { return bits_ != other.bits_; }
  bool operator<(AttrSet other) const { return bits_ < other.bits_; }

 private:
  uint64_t bits_;
};

/// Iterates over all subsets of `universe` (including empty and full).
/// Usage: for (SubsetIterator it(u); !it.Done(); it.Next()) use(it.Current());
class SubsetIterator {
 public:
  explicit SubsetIterator(AttrSet universe)
      : universe_(universe.bits()), current_(0), done_(false) {}

  bool Done() const { return done_; }
  AttrSet Current() const { return AttrSet(current_); }
  void Next() {
    if (current_ == universe_) {
      done_ = true;
    } else {
      current_ = (current_ - universe_) & universe_;
    }
  }

 private:
  uint64_t universe_;
  uint64_t current_;
  bool done_;
};

}  // namespace coverpack

#endif  // COVERPACK_QUERY_ATTR_SET_H_
