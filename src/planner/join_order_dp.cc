#include "planner/join_order_dp.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "util/logging.h"

namespace coverpack {
namespace planner {

namespace {

/// Cardinality estimates saturate well below uint64 overflow; anything
/// this large only needs to *lose* every cost comparison consistently.
constexpr uint64_t kCardinalityCap = uint64_t{1} << 60;

uint64_t CardToU64(long double value) {
  if (value <= 0.0L) return 0;
  if (value >= static_cast<long double>(kCardinalityCap)) return kCardinalityCap;
  return static_cast<uint64_t>(std::llroundl(value));
}

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  return (a > kCardinalityCap - std::min(b, kCardinalityCap)) ? kCardinalityCap : a + b;
}

}  // namespace

uint64_t EstimateSubsetCardinality(const Hypergraph& query, const StatsSnapshot& stats,
                                   EdgeSet subset) {
  CP_CHECK(!subset.empty());
  long double estimate = 1.0L;
  for (EdgeId e : subset.ToVector()) {
    const uint64_t rows = stats.relations[e].rows;
    if (rows == 0) return 0;
    estimate *= static_cast<long double>(rows);
  }
  for (AttrId x : query.AttrsOf(subset).ToVector()) {
    std::vector<uint64_t> distinct;
    for (EdgeId e : subset.ToVector()) {
      if (query.edge(e).attrs.Contains(x)) {
        distinct.push_back(stats.relations[e].ColumnFor(x).distinct);
      }
    }
    if (distinct.size() < 2) continue;
    // Preservation of values: the side with the most distinct values
    // supplies the join keys; every further occurrence filters by 1/d.
    std::sort(distinct.begin(), distinct.end(), std::greater<uint64_t>());
    for (size_t i = 1; i < distinct.size(); ++i) {
      estimate /= static_cast<long double>(std::max<uint64_t>(1, distinct[i]));
    }
  }
  return std::max<uint64_t>(1, CardToU64(estimate));
}

JoinOrderPlan PlanJoinOrder(const Hypergraph& query, const StatsSnapshot& stats) {
  const uint32_t m = query.num_edges();
  CP_CHECK_GE(m, 1u);
  CP_CHECK_LE(m, 24u) << "join-order DP is exponential in the edge count";
  const uint64_t full = query.AllEdges().bits();

  JoinOrderPlan plan;
  // Ordered memo tables (project rule: no unordered iteration) keyed by
  // subset bits; numeric subset order visits every proper subset first.
  std::map<uint64_t, uint64_t> cost;
  std::map<uint64_t, std::string> rendering;
  for (uint64_t s = 1; s <= full; ++s) {
    if ((s & full) != s) continue;
    const EdgeSet subset(s);
    const uint64_t card = EstimateSubsetCardinality(query, stats, subset);
    plan.subset_cardinalities[s] = card;
    if (subset.size() == 1) {
      cost[s] = 0;  // base relations are inputs, not intermediates
      rendering[s] = query.edge(subset.First()).name;
      continue;
    }
    uint64_t best_cost = 0;
    uint64_t best_left = 0;
    bool best_connected = false;
    bool found = false;
    // All unordered splits {a, s\a}; canonicalized by a < complement.
    for (uint64_t a = (s - 1) & s; a != 0; a = (a - 1) & s) {
      const uint64_t b = s & ~a;
      if (a >= b) continue;
      const bool connected =
          query.AttrsOf(EdgeSet(a)).Intersects(query.AttrsOf(EdgeSet(b)));
      const uint64_t split_cost = SaturatingAdd(cost[a], cost[b]);
      // DPccp's connectedness preference: a Cartesian split survives only
      // when no attribute-sharing split exists for this subset.
      const bool better =
          !found || (connected && !best_connected) ||
          (connected == best_connected &&
           (split_cost < best_cost || (split_cost == best_cost && a < best_left)));
      if (better) {
        best_cost = split_cost;
        best_left = a;
        best_connected = connected;
        found = true;
      }
    }
    CP_CHECK(found);
    cost[s] = SaturatingAdd(best_cost, card);  // this node's intermediate
    rendering[s] = "(" + rendering[best_left] + " " + rendering[s & ~best_left] + ")";
  }

  plan.out_estimate = plan.subset_cardinalities[full];
  plan.c_out = cost[full];
  plan.order = rendering[full];
  return plan;
}

}  // namespace planner
}  // namespace coverpack
