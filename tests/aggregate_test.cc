#include "relation/aggregate.h"

#include <gtest/gtest.h>

#include "query/catalog.h"
#include "query/parser.h"
#include "query/properties.h"
#include "relation/oracle.h"
#include "workload/generators.h"
#include "workload/random_queries.h"

namespace coverpack {
namespace {

/// Canonicalizes an AggregateResult into sorted (key, value) pairs.
std::vector<std::pair<std::vector<Value>, uint64_t>> Canon(const AggregateResult& result) {
  std::vector<std::pair<std::vector<Value>, uint64_t>> pairs;
  for (size_t i = 0; i < result.values.size(); ++i) {
    auto row = result.keys.row(i);
    pairs.emplace_back(std::vector<Value>(row.begin(), row.end()), result.values[i]);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

TEST(FreeConnexTest, Recognition) {
  Hypergraph line3 = catalog::Line3();  // R1(A,B), R2(B,C), R3(C,D)
  AttrId a = *line3.FindAttribute("A");
  AttrId b = *line3.FindAttribute("B");
  AttrId d = *line3.FindAttribute("D");
  // y = {A} : the virtual edge {A} nests into R1 -> acyclic -> free-connex.
  EXPECT_TRUE(IsFreeConnex(line3, AttrSet::Single(a)));
  // y = {A, D} : endpoints of the path; Q + {A,D} contains a cycle.
  EXPECT_FALSE(IsFreeConnex(line3, AttrSet::FromIds({a, d})));
  // y = {A, B} and y = all attributes are free-connex.
  EXPECT_TRUE(IsFreeConnex(line3, AttrSet::FromIds({a, b})));
  EXPECT_TRUE(IsFreeConnex(line3, line3.AllAttrs()));
  // y = empty reduces to plain acyclicity.
  EXPECT_TRUE(IsFreeConnex(line3, AttrSet()));
  EXPECT_FALSE(IsFreeConnex(catalog::Triangle(), AttrSet()));
}

TEST(AggregateTest, CountGroupByOnLine3) {
  Hypergraph q = catalog::Line3();
  Instance instance(q);
  instance[0].AppendRow({1, 10});
  instance[0].AppendRow({2, 10});
  instance[1].AppendRow({10, 20});
  instance[1].AppendRow({10, 21});
  instance[2].AppendRow({20, 30});
  instance[2].AppendRow({21, 30});
  // COUNT(*) GROUP BY A: each A value extends to 2 C values x 1 D = 2.
  AttrId a = *q.FindAttribute("A");
  AggregateResult result = JoinAggregate(q, instance, UnitAnnotations(instance),
                                         AttrSet::Single(a), CountingSemiring());
  auto pairs = Canon(result);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<std::vector<Value>, uint64_t>{{1}, 2}));
  EXPECT_EQ(pairs[1], (std::pair<std::vector<Value>, uint64_t>{{2}, 2}));
}

TEST(AggregateTest, ScalarCountMatchesAcyclicJoinCount) {
  for (uint64_t seed : {3u, 4u, 5u}) {
    Rng rng(seed);
    Hypergraph q = workload::RandomAcyclicQuery(&rng);
    Instance instance = workload::UniformInstance(q, 60, 6, &rng);
    auto tree = JoinTree::Build(q);
    ASSERT_TRUE(tree);
    EXPECT_EQ(JoinAggregateScalar(q, instance, UnitAnnotations(instance), CountingSemiring()),
              AcyclicJoinCount(q, *tree, instance))
        << q.ToString();
  }
}

TEST(AggregateTest, TropicalSemiringFindsLightestJoin) {
  // Annotate tuples with costs; the tropical aggregate finds the cheapest
  // join result per group.
  Hypergraph q = ParseQuery("R1(A,B), R2(B,C)");
  Instance instance(q);
  instance[0].AppendRow({1, 10});
  instance[0].AppendRow({1, 11});
  instance[1].AppendRow({10, 5});
  instance[1].AppendRow({11, 5});
  Annotations costs(2);
  costs[0] = {7, 2};   // (1,10) costs 7; (1,11) costs 2
  costs[1] = {1, 10};  // (10,5) costs 1; (11,5) costs 10
  AttrId a = *q.FindAttribute("A");
  AggregateResult result =
      JoinAggregate(q, instance, costs, AttrSet::Single(a), TropicalSemiring());
  auto pairs = Canon(result);
  ASSERT_EQ(pairs.size(), 1u);
  // Paths: 7+1 = 8 via B=10; 2+10 = 12 via B=11. Min = 8.
  EXPECT_EQ(pairs[0].second, 8u);
}

TEST(AggregateTest, DisconnectedComponentsMultiply) {
  Hypergraph q = ParseQuery("R1(A,B), R2(X)");
  Instance instance(q);
  instance[0].AppendRow({1, 2});
  instance[0].AppendRow({1, 3});
  instance[1].AppendRow({7});
  instance[1].AppendRow({8});
  instance[1].AppendRow({9});
  AttrId a = *q.FindAttribute("A");
  AggregateResult result = JoinAggregate(q, instance, UnitAnnotations(instance),
                                         AttrSet::Single(a), CountingSemiring());
  auto pairs = Canon(result);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].second, 6u);  // 2 B-values x 3 X-values
}

TEST(AggregateTest, EmptyComponentZeroesEverything) {
  Hypergraph q = ParseQuery("R1(A,B), R2(X)");
  Instance instance(q);
  instance[0].AppendRow({1, 2});
  // R2 empty.
  AttrId a = *q.FindAttribute("A");
  AggregateResult result = JoinAggregate(q, instance, UnitAnnotations(instance),
                                         AttrSet::Single(a), CountingSemiring());
  EXPECT_TRUE(result.values.empty());
}

class AggregateFuzzTest : public ::testing::TestWithParam<uint64_t> {};

/// Property: the message-passing evaluation agrees with brute force on
/// every random free-connex (query, y) pair, under both semirings.
TEST_P(AggregateFuzzTest, MatchesBruteForce) {
  Rng rng(GetParam() * 2654435761u + 1);
  Hypergraph q = workload::RandomAcyclicQuery(&rng);
  Instance instance = workload::UniformInstance(q, 30, 5, &rng);

  // Random output set; skip non-free-connex draws.
  std::vector<AttrId> attrs = q.AllAttrs().ToVector();
  AttrSet y;
  for (AttrId v : attrs) {
    if (rng.Bernoulli(0.4)) y.Insert(v);
  }
  if (!IsFreeConnex(q, y)) return;

  // Random annotations.
  Annotations annotations(q.num_edges());
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    for (size_t i = 0; i < instance[e].size(); ++i) {
      annotations[e].push_back(1 + rng.Uniform(5));
    }
  }

  for (const Semiring& semiring : {CountingSemiring(), TropicalSemiring()}) {
    AggregateResult fast = JoinAggregate(q, instance, annotations, y, semiring);
    AggregateResult slow = JoinAggregateBruteForce(q, instance, annotations, y, semiring);
    EXPECT_EQ(Canon(fast), Canon(slow)) << q.ToString() << " y=" << y.bits();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateFuzzTest, ::testing::Range<uint64_t>(1, 61));

}  // namespace
}  // namespace coverpack
