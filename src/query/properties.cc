#include "query/properties.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace coverpack {

namespace {

/// Mutable view of the query used by the GYO fixpoint: pairs of
/// (original edge id, remaining attribute set).
using LiveEdges = std::vector<std::pair<EdgeId, AttrSet>>;

/// Applies one GYO rule if possible; returns false at fixpoint.
bool GyoStepOnce(LiveEdges* edges, std::vector<GyoStep>* steps) {
  // Rule 2 first (cheap, and it keeps rule 1 simple): remove an edge whose
  // attributes are contained in another live edge. Empty edges count.
  for (size_t i = 0; i < edges->size(); ++i) {
    for (size_t j = 0; j < edges->size(); ++j) {
      if (i == j) continue;
      if ((*edges)[i].second.IsSubsetOf((*edges)[j].second)) {
        steps->push_back(GyoStep{GyoStep::kRemoveSubsumedEdge, /*attr=*/0,
                                 (*edges)[i].first, (*edges)[j].first});
        edges->erase(edges->begin() + static_cast<long>(i));
        return true;
      }
    }
  }
  // Single empty edge left: the query is fully reduced away.
  if (edges->size() == 1 && (*edges)[0].second.empty()) {
    steps->push_back(
        GyoStep{GyoStep::kRemoveSubsumedEdge, /*attr=*/0, (*edges)[0].first, (*edges)[0].first});
    edges->clear();
    return true;
  }
  // Rule 1: remove an attribute that appears in exactly one edge.
  for (size_t i = 0; i < edges->size(); ++i) {
    for (AttrId v : (*edges)[i].second.ToVector()) {
      bool unique = true;
      for (size_t j = 0; j < edges->size(); ++j) {
        if (j != i && (*edges)[j].second.Contains(v)) {
          unique = false;
          break;
        }
      }
      if (unique) {
        steps->push_back(GyoStep{GyoStep::kRemoveUniqueAttr, v, (*edges)[i].first, 0});
        (*edges)[i].second.Remove(v);
        return true;
      }
    }
  }
  return false;
}

}  // namespace

GyoResult GyoReduce(const Hypergraph& query) {
  LiveEdges edges;
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    edges.emplace_back(e, query.edge(e).attrs);
  }
  GyoResult result;
  while (GyoStepOnce(&edges, &result.steps)) {
  }
  result.acyclic = edges.empty();
  return result;
}

bool IsAlphaAcyclic(const Hypergraph& query) { return GyoReduce(query).acyclic; }

bool IsBergeAcyclic(const Hypergraph& query) {
  // The incidence bipartite graph is a forest iff in every connected
  // component: (#incidences) == (#attr vertices) + (#edge vertices) - 1.
  // We check globally per component via union-find over attr/edge nodes.
  uint32_t num_attrs = query.num_attrs();
  uint32_t num_edges = query.num_edges();
  std::vector<uint32_t> parent(num_attrs + num_edges);
  for (uint32_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (uint32_t e = 0; e < num_edges; ++e) {
    for (AttrId v : query.edge(e).attrs.ToVector()) {
      uint32_t root_attr = find(v);
      uint32_t root_edge = find(num_attrs + e);
      if (root_attr == root_edge) return false;  // incidence closes a cycle
      parent[root_attr] = root_edge;
    }
  }
  return true;
}

bool IsTreeJoin(const Hypergraph& query) {
  for (const auto& edge : query.edges()) {
    if (edge.attrs.size() > 2) return false;
  }
  return IsAlphaAcyclic(query);
}

bool IsPathJoin(const Hypergraph& query) {
  if (!IsTreeJoin(query)) return false;
  uint32_t m = query.num_edges();
  if (m <= 1) return true;
  // Count relation adjacencies (shared attributes).
  std::vector<uint32_t> degree(m, 0);
  uint32_t adjacency_count = 0;
  for (uint32_t i = 0; i < m; ++i) {
    for (uint32_t j = i + 1; j < m; ++j) {
      if (query.edge(i).attrs.Intersects(query.edge(j).attrs)) {
        ++degree[i];
        ++degree[j];
        ++adjacency_count;
      }
    }
  }
  // A simple path on m nodes has m-1 adjacencies, two endpoints of degree 1
  // and the rest of degree 2; combined with connectivity this is exact.
  if (adjacency_count != m - 1) return false;
  uint32_t endpoints = 0;
  for (uint32_t deg : degree) {
    if (deg == 0 || deg > 2) return false;
    if (deg == 1) ++endpoints;
  }
  if (endpoints != 2) return false;
  return query.ConnectedComponents().size() == 1;
}

bool IsHierarchical(const Hypergraph& query) {
  std::vector<AttrId> attrs = query.AllAttrs().ToVector();
  for (size_t i = 0; i < attrs.size(); ++i) {
    for (size_t j = i + 1; j < attrs.size(); ++j) {
      EdgeSet ex = query.EdgesContaining(attrs[i]);
      EdgeSet ey = query.EdgesContaining(attrs[j]);
      if (!ex.IsSubsetOf(ey) && !ey.IsSubsetOf(ex) && ex.Intersects(ey)) return false;
    }
  }
  return true;
}

bool IsRHierarchical(const Hypergraph& query) { return IsHierarchical(Reduce(query)); }

bool IsLoomisWhitney(const Hypergraph& query) {
  AttrSet all = query.AllAttrs();
  uint32_t n = all.size();
  if (query.num_edges() != n || n < 3) return false;
  std::vector<AttrSet> expected;
  for (AttrId v : all.ToVector()) {
    expected.push_back(all.Minus(AttrSet::Single(v)));
  }
  std::vector<AttrSet> actual;
  for (const auto& edge : query.edges()) actual.push_back(edge.attrs);
  auto by_bits = [](AttrSet a, AttrSet b) { return a.bits() < b.bits(); };
  std::sort(expected.begin(), expected.end(), by_bits);
  std::sort(actual.begin(), actual.end(), by_bits);
  return expected == actual;
}

bool IsDegreeTwo(const Hypergraph& query) {
  for (AttrId v : query.AllAttrs().ToVector()) {
    if (query.AttrDegree(v) != 2) return false;
  }
  return true;
}

bool DegreeTwoHasNoOddCycle(const Hypergraph& query) {
  CP_CHECK(IsDegreeTwo(query));
  // The dual graph has relations as vertices and one edge per attribute;
  // "no odd cycle" is bipartiteness, tested by BFS two-coloring.
  uint32_t m = query.num_edges();
  std::vector<std::vector<uint32_t>> adjacency(m);
  for (AttrId v : query.AllAttrs().ToVector()) {
    std::vector<EdgeId> pair = query.EdgesContaining(v).ToVector();
    CP_CHECK_EQ(pair.size(), 2u);
    adjacency[pair[0]].push_back(pair[1]);
    adjacency[pair[1]].push_back(pair[0]);
  }
  std::vector<int> color(m, -1);
  for (uint32_t start = 0; start < m; ++start) {
    if (color[start] != -1) continue;
    color[start] = 0;
    std::vector<uint32_t> queue{start};
    while (!queue.empty()) {
      uint32_t u = queue.back();
      queue.pop_back();
      for (uint32_t w : adjacency[u]) {
        if (color[w] == -1) {
          color[w] = 1 - color[u];
          queue.push_back(w);
        } else if (color[w] == color[u]) {
          return false;
        }
      }
    }
  }
  return true;
}

IntegralEdgeCover MinimumIntegralEdgeCover(const Hypergraph& query) {
  AttrSet all = query.AllAttrs();
  IntegralEdgeCover best;
  best.size = query.num_edges() + 1;
  for (SubsetIterator it(query.AllEdges()); !it.Done(); it.Next()) {
    EdgeSet candidate = it.Current();
    if (candidate.size() >= best.size) continue;
    if (query.AttrsOf(candidate) == all) {
      best.edges = candidate;
      best.size = candidate.size();
    }
  }
  CP_CHECK_LE(best.size, query.num_edges()) << "full edge set always covers";
  return best;
}

Hypergraph Reduce(const Hypergraph& query) {
  EdgeSet kept = query.AllEdges();
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<EdgeId> live = kept.ToVector();
    for (EdgeId i : live) {
      for (EdgeId j : live) {
        if (i == j || !kept.Contains(i) || !kept.Contains(j)) continue;
        if (query.edge(i).attrs.IsSubsetOf(query.edge(j).attrs)) {
          kept.Remove(i);
          changed = true;
          break;
        }
      }
    }
  }
  return query.InducedByEdges(kept);
}

std::string ClassificationString(const Hypergraph& query) {
  std::ostringstream oss;
  bool alpha = IsAlphaAcyclic(query);
  oss << (alpha ? "alpha-acyclic" : "cyclic");
  if (IsBergeAcyclic(query)) oss << ", berge-acyclic";
  if (IsTreeJoin(query)) oss << ", tree";
  if (IsPathJoin(query)) oss << ", path";
  if (IsRHierarchical(query)) oss << ", r-hierarchical";
  if (IsLoomisWhitney(query)) oss << ", loomis-whitney";
  if (IsDegreeTwo(query)) {
    oss << ", degree-two";
    if (DegreeTwoHasNoOddCycle(query)) {
      oss << " (no odd cycle)";
    } else {
      oss << " (odd cycle)";
    }
  }
  return oss.str();
}

}  // namespace coverpack
