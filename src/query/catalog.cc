#include "query/catalog.h"

#include "query/parser.h"
#include "util/logging.h"

namespace coverpack {
namespace catalog {

namespace {

std::string Var(uint32_t i) { return "X" + std::to_string(i); }

}  // namespace

Hypergraph Path(uint32_t k) {
  CP_CHECK_GE(k, 1u);
  Hypergraph::Builder builder;
  for (uint32_t i = 1; i <= k; ++i) {
    builder.AddRelation("R" + std::to_string(i), {Var(i - 1), Var(i)});
  }
  return builder.Build();
}

Hypergraph Star(uint32_t k) {
  CP_CHECK_GE(k, 1u);
  Hypergraph::Builder builder;
  for (uint32_t i = 1; i <= k; ++i) {
    builder.AddRelation("R" + std::to_string(i), {Var(0), Var(i)});
  }
  return builder.Build();
}

Hypergraph StarDual(uint32_t k) {
  CP_CHECK_GE(k, 1u);
  Hypergraph::Builder builder;
  std::vector<std::string> center;
  for (uint32_t i = 1; i <= k; ++i) center.push_back(Var(i));
  builder.AddRelation("R0", center);
  for (uint32_t i = 1; i <= k; ++i) {
    builder.AddRelation("R" + std::to_string(i), {Var(i)});
  }
  return builder.Build();
}

Hypergraph Cycle(uint32_t k) {
  CP_CHECK_GE(k, 3u);
  Hypergraph::Builder builder;
  for (uint32_t i = 1; i <= k; ++i) {
    builder.AddRelation("R" + std::to_string(i), {Var(i - 1), Var(i % k)});
  }
  return builder.Build();
}

Hypergraph LoomisWhitney(uint32_t n) {
  CP_CHECK_GE(n, 3u);
  Hypergraph::Builder builder;
  for (uint32_t omit = 0; omit < n; ++omit) {
    std::vector<std::string> attrs;
    for (uint32_t i = 0; i < n; ++i) {
      if (i != omit) attrs.push_back(Var(i));
    }
    builder.AddRelation("R" + std::to_string(omit + 1), attrs);
  }
  return builder.Build();
}

Hypergraph Clique(uint32_t k) {
  CP_CHECK_GE(k, 2u);
  Hypergraph::Builder builder;
  uint32_t id = 1;
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = i + 1; j < k; ++j) {
      builder.AddRelation("R" + std::to_string(id++), {Var(i), Var(j)});
    }
  }
  return builder.Build();
}

Hypergraph Triangle() { return ParseQuery("R1(A,B), R2(B,C), R3(C,A)"); }

Hypergraph BoxJoin() {
  return ParseQuery("R1(A,B,C), R2(D,E,F), R3(A,D), R4(B,E), R5(C,F)");
}

Hypergraph Figure4Query() {
  return ParseQuery(
      "e0(A,B,C,H), e1(A,B,D), e2(B,C,E), e3(A,C,F), e4(A,B,H,J), "
      "e5(A,H,I), e6(A,I,K), e7(A,I,G)");
}

Hypergraph SemiJoinExample() { return ParseQuery("R1(A), R2(A,B), R3(B)"); }

Hypergraph Line3() { return ParseQuery("R1(A,B), R2(B,C), R3(C,D)"); }

Hypergraph AlphaNotBerge() {
  return ParseQuery("R0(A,B,C), R1(A,B,D), R2(B,C,E), R3(A,C,F)");
}

Hypergraph PackingProvableSixEdges() {
  // Two ternary hubs R1(A,B,C), R2(D,E,F) fully matched by three binary
  // bridges (a 6-cycle in the bipartite incidence structure), like Q_box but
  // with the bridges rotated; every vertex has degree two and all cycles in
  // the incidence graph are even.
  return ParseQuery("R1(A,B,C), R2(D,E,F), R3(A,E), R4(B,F), R5(C,D)");
}

Hypergraph EvenCycle(uint32_t k) {
  CP_CHECK_GE(k, 2u);
  return Cycle(2 * k);
}

std::vector<NamedQuery> StandardRoster() {
  std::vector<NamedQuery> roster;
  roster.push_back({"semijoin(R1(A),R2(A,B),R3(B))", SemiJoinExample()});
  roster.push_back({"line3", Line3()});
  roster.push_back({"path4", Path(4)});
  roster.push_back({"path5", Path(5)});
  roster.push_back({"star4", Star(4)});
  roster.push_back({"star_dual3", StarDual(3)});
  roster.push_back({"star_dual4", StarDual(4)});
  roster.push_back({"figure4", Figure4Query()});
  roster.push_back({"alpha_not_berge", AlphaNotBerge()});
  roster.push_back({"triangle", Triangle()});
  roster.push_back({"cycle4", Cycle(4)});
  roster.push_back({"cycle5", Cycle(5)});
  roster.push_back({"cycle6", Cycle(6)});
  roster.push_back({"LW3", LoomisWhitney(3)});
  roster.push_back({"LW4", LoomisWhitney(4)});
  roster.push_back({"box_join", BoxJoin()});
  roster.push_back({"packing_provable6", PackingProvableSixEdges()});
  roster.push_back({"clique4", Clique(4)});
  return roster;
}

}  // namespace catalog
}  // namespace coverpack
