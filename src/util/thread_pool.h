/// \file thread_pool.h
/// \brief Fixed-size thread pool with a deterministic ParallelFor primitive.
///
/// The MPC model this repo simulates is embarrassingly parallel across
/// servers within a round, so real threads can mirror the model exactly —
/// *provided* the parallel path is bit-identical to the serial one. The
/// pool is designed around that requirement:
///
///  * Work is split into **shards**: contiguous index ranges whose
///    decomposition depends only on (begin, end, grain) — never on the
///    thread count. Call sites accumulate into per-shard buffers and merge
///    them in ascending shard order, so any thread count (including 1)
///    produces byte-identical results.
///  * `ParallelFor` is **re-entrant**: a worker running a task may submit a
///    nested ParallelFor (the recursive `Cluster` subquery shape in
///    src/core/acyclic_join.cc). The calling thread always participates in
///    its own batch and every batch's creator keeps claiming that batch's
///    shards, so nested submission cannot deadlock even with one worker.
///  * Exceptions thrown by shard functions are captured (first one wins),
///    the remaining shards of the batch are still accounted for, and the
///    exception is rethrown on the calling thread once the batch drains.
///
/// A pool of `num_threads` N provides N-way concurrency: N-1 background
/// workers plus the calling thread. `ThreadPool(1)` spawns no workers and
/// runs everything inline — the serial reference path.

#ifndef COVERPACK_UTIL_THREAD_POOL_H_
#define COVERPACK_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace coverpack {

class ThreadPool {
 public:
  /// Shard function: fn(shard_begin, shard_end, shard_index). Shard index
  /// is dense in [0, NumShards(...)), in ascending range order.
  using ShardFn = std::function<void(size_t, size_t, size_t)>;

  /// \param num_threads total concurrency including the calling thread;
  /// clamped to >= 1. `ThreadPool(4)` spawns 3 workers.
  explicit ThreadPool(unsigned num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins the workers. Tasks already claimed finish; queued batches are
  /// drained by their (blocked) submitters, and fire-and-forget Submit
  /// closures not yet started are discarded.
  ~ThreadPool();

  unsigned num_threads() const { return num_threads_; }

  /// Number of shards ParallelForShards splits [begin, end) into: depends
  /// only on the range and grain, never on the thread count. Call sites
  /// use it to size per-shard accumulation buffers.
  static size_t NumShards(size_t begin, size_t end, size_t grain);

  /// Runs fn(shard_begin, shard_end, shard_index) for every grain-sized
  /// contiguous shard of [begin, end); the final shard is clamped to `end`,
  /// so the shards tile the range exactly. Blocks until every shard completed;
  /// rethrows the first exception any shard threw. Safe to call from
  /// inside a worker task (nested parallelism).
  void ParallelForShards(size_t begin, size_t end, size_t grain, const ShardFn& fn);

  /// Element-wise sugar: runs fn(i) for every i in [begin, end), sharded
  /// by `grain`. Same blocking/exception/determinism contract.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& fn);

  /// Fire-and-forget submission; runs on some worker (inline when the pool
  /// has no workers). No completion signal — used for teardown testing and
  /// background work whose result is observed elsewhere.
  void Submit(std::function<void()> fn);

  /// True while the current thread is executing a pool shard or Submit
  /// closure (worker or a caller helping its own batch). The telemetry
  /// audit uses this to distinguish sanctioned pool parallelism from an
  /// unsynchronized foreign thread.
  static bool InPoolTask();

  // ---- Process-global pool ------------------------------------------------
  // The simulator's hot paths pull their pool from here; the bench driver
  // sizes it once at startup from --threads.

  /// The global pool, created on first use with GlobalThreads() threads.
  static ThreadPool& Global();

  /// Sets the global pool size. Rebuilds the pool if it already exists
  /// with a different size. Not safe to call concurrently with work
  /// running on the global pool.
  static void SetGlobalThreads(unsigned num_threads);

  /// The size the global pool has (or will be created with): the last
  /// SetGlobalThreads value, defaulting to std::thread::hardware_concurrency.
  static unsigned GlobalThreads();

 private:
  /// One ParallelForShards invocation: shards are claimed off `next` by
  /// every participating thread; `completed` reaching `shards` releases
  /// the submitter. Shared-ptr-owned because stale queue entries can
  /// outlive the submitting frame.
  struct Batch {
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 1;
    size_t shards = 0;
    const ShardFn* fn = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    Mutex done_mutex;
    std::condition_variable_any done_cv;
    Mutex error_mutex;
    std::exception_ptr error CP_GUARDED_BY(error_mutex);
  };

  /// A queue entry: either a batch announcement or a Submit closure.
  struct QueueEntry {
    std::shared_ptr<Batch> batch;
    std::function<void()> simple;
  };

  void WorkerLoop();

  /// Claims and runs shards of `batch` until none remain. Returns after
  /// the local claims are done (other threads may still be running theirs).
  void DrainBatch(Batch* batch);

  /// Runs one claimed shard, capturing exceptions into the batch.
  void RunShard(Batch* batch, size_t shard);

  unsigned num_threads_;
  Mutex queue_mutex_;
  std::condition_variable_any queue_cv_;
  std::deque<QueueEntry> queue_ CP_GUARDED_BY(queue_mutex_);
  bool stopping_ CP_GUARDED_BY(queue_mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace coverpack

#endif  // COVERPACK_UTIL_THREAD_POOL_H_
