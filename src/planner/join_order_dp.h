/// \file join_order_dp.h
/// \brief C_out-style dynamic programming over join orders.
///
/// Once tuples land on a server, the intra-server join of an acyclic
/// residual is a sequential multi-way join whose cost is dominated by the
/// sizes of the intermediate results it materializes — mutable's C_out
/// cost function: cost(plan) = sum of |intermediate| over every inner node
/// of the plan tree. This DP searches bushy plans over the connected
/// edge subsets of the query (DPccp-style, but enumerated over the 64-bit
/// EdgeSet masks this library already uses), with cardinalities estimated
/// from the per-column statistics of stats.h under the classic
/// preservation-of-values assumption:
///
///   |S| = prod_{e in S} N_e * prod_{x} prod_{i=2..k_x} 1 / d_i(x)
///
/// where, for each attribute x occurring in k_x >= 2 edges of S, the
/// d_i(x) are the per-edge distinct counts of x sorted descending (each
/// additional occurrence filters by one more 1/d factor, keeping the
/// largest side as the value supply).
///
/// The memo table is a std::map keyed by subset bits — ordered, per the
/// project's no-unordered-iteration rule, so DP traversal (and therefore
/// every tie-break) is deterministic. The full-set entry doubles as the
/// OUT estimate that feeds the output-balanced candidate of the cost
/// model.

#ifndef COVERPACK_PLANNER_JOIN_ORDER_DP_H_
#define COVERPACK_PLANNER_JOIN_ORDER_DP_H_

#include <cstdint>
#include <map>
#include <string>

#include "planner/stats.h"
#include "query/hypergraph.h"

namespace coverpack {
namespace planner {

/// The best plan the DP found.
struct JoinOrderPlan {
  uint64_t out_estimate = 0;  ///< estimated |Q| (full-set cardinality)
  uint64_t c_out = 0;         ///< sum of estimated intermediate sizes
  std::string order;          ///< rendered best bushy plan, e.g. ((R1 R2) R3)
  /// Estimated cardinality of every enumerated edge subset (by bitmask).
  std::map<uint64_t, uint64_t> subset_cardinalities;
};

/// Estimated cardinality of the join of the edge subset `subset`.
uint64_t EstimateSubsetCardinality(const Hypergraph& query, const StatsSnapshot& stats,
                                   EdgeSet subset);

/// Runs the DP over all 2^num_edges subsets (queries are constant-size;
/// the service caps cacheable shapes well below the 64-edge mask limit).
/// Cartesian splits are allowed but only chosen when no connected split
/// exists, mirroring DPccp's connectedness preference.
JoinOrderPlan PlanJoinOrder(const Hypergraph& query, const StatsSnapshot& stats);

}  // namespace planner
}  // namespace coverpack

#endif  // COVERPACK_PLANNER_JOIN_ORDER_DP_H_
