/// \file cost_model.h
/// \brief C_out-style cost model over the paper's algorithm menu.
///
/// For one (query, p, stats) triple the model produces a CostTable with
/// one CostEstimate per algorithm the repo implements:
///
///  * one-round skew-aware hypercube (Theorems 2/4 of the one-round
///    literature): per-server load estimated from the size-aware share
///    optimizer's actual grid, plus a degree-skew term — the heaviest
///    value of each shared attribute lands on one grid slice before the
///    skew-aware split kicks in, and after the split still pays its
///    residual-query replication;
///  * multi-round acyclic (Theorem 5): load estimated from Theorem 4's
///    threshold L = max_{S in S(E)} (prod_{e in S} N_e / p)^(1/|S|) —
///    computed from the statistics' relation sizes, matching the
///    executor's PlanLoadOptimal bit for bit;
///  * output-balanced Yannakakis (Theorem 7 / [15]): load N_total/p +
///    OUT/p with OUT estimated by the join-order DP, plus the heaviest
///    root-tuple extension group (the implementation never splits one
///    root tuple's extensions across servers).
///
/// Every estimate also carries a tick cost under the same simulated-clock
/// constants the query service charges (rounds x latency + load /
/// tuples-per-tick), so the chooser can tie-break equal loads by rounds.
///
/// Exponent guards: an estimate is only `exponent_safe` when choosing it
/// cannot lose the best theoretical exponent the query admits — for
/// acyclic queries that yardstick is Theorem 5's -1/rho*; one-round is
/// safe only when psi* == rho* (its own exponent matches), and
/// output-balanced only when its estimated load stays within a constant
/// of the Theorem 5 threshold. The chooser never picks an unsafe entry,
/// so a wildly wrong OUT estimate can cost constants, never exponents.

#ifndef COVERPACK_PLANNER_COST_MODEL_H_
#define COVERPACK_PLANNER_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "planner/join_order_dp.h"
#include "planner/stats.h"
#include "query/hypergraph.h"
#include "util/rational.h"

namespace coverpack {
namespace planner {

/// The algorithm menu, in fixed display/tie-break order.
enum class Algorithm : uint8_t {
  kOneRound = 0,          ///< skew-aware one-round hypercube
  kAcyclicMultiRound = 1, ///< Theorem 5 worst-case-optimal run
  kOutputBalanced = 2,    ///< output-balanced Yannakakis
};

const char* AlgorithmName(Algorithm algorithm);

/// Simulated-clock constants, mirroring the service's latency model so
/// planner tick estimates and service tick charges are commensurable.
inline constexpr uint64_t kPlannerRoundLatencyTicks = 32;
inline constexpr uint64_t kPlannerTuplesPerTick = 64;

/// Slack factor: output-balanced stays exponent-safe while its estimated
/// load is at most this multiple of the Theorem 5 estimate.
inline constexpr uint64_t kOutputBalancedSlack = 4;

/// The LP numbers a cost table is conditioned on. The service's PlanCache
/// already stores these; standalone callers compute them once here.
struct LpNumbers {
  Rational rho_star;
  Rational tau_star;
  Rational psi_star;
  bool acyclic = false;
  uint32_t join_tree_roots = 0;  ///< 0 when cyclic
};

LpNumbers ComputeLpNumbers(const Hypergraph& query);

/// One algorithm's estimated cost on one (query, p, stats) triple.
struct CostEstimate {
  Algorithm algorithm = Algorithm::kOneRound;
  bool applicable = false;    ///< structurally runnable on this query
  bool exponent_safe = false; ///< choosing it cannot lose the exponent
  uint64_t est_load = 0;      ///< estimated bottleneck load (tuples)
  uint32_t est_rounds = 0;
  uint64_t est_cost_ticks = 0;
  std::string detail;         ///< the formula trace, for repro printing
};

/// The full menu's estimates plus the shared DP artifacts.
struct CostTable {
  std::vector<CostEstimate> entries;  ///< indexed by Algorithm value
  JoinOrderPlan join_order;           ///< DP result (OUT estimate, C_out)
  uint64_t thm5_threshold = 0;        ///< Theorem 4/5 L from the stats

  const CostEstimate& ForAlgorithm(Algorithm algorithm) const;
  std::string ToString() const;
};

/// Theorem 4's load threshold computed from the snapshot's relation sizes
/// — identical to core's PlanLoadOptimal on the same instance. Requires
/// an acyclic query.
uint64_t EstimateOptimalThreshold(const Hypergraph& query, const StatsSnapshot& stats,
                                  uint32_t p);

/// Builds the cost table. Pure function of its arguments: no clocks, no
/// randomness, ordered iteration only — bit-identical everywhere.
CostTable EstimateCosts(const Hypergraph& query, uint32_t p, const StatsSnapshot& stats,
                        const LpNumbers& lp);

}  // namespace planner
}  // namespace coverpack

#endif  // COVERPACK_PLANNER_COST_MODEL_H_
