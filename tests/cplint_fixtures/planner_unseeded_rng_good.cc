// cplint fixture: deterministic sampling from an explicit split seed —
// the only sanctioned randomness in src/planner/: every stream derives
// from the corpus seed, so a failing case replays from its name alone.
#include <cstdint>

uint64_t SplitMix(uint64_t seed) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t SampleRowForHistogram(uint64_t seed, uint64_t num_rows) {
  return SplitMix(seed) % num_rows;
}
