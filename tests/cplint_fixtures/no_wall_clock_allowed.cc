// cplint fixture: a suppressed wall-clock read.
#include <ctime>

long Stamp() {
  return time(nullptr);  // cplint: allow(no-wall-clock)
}
