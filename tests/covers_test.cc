#include "lp/covers.h"

#include <gtest/gtest.h>

#include "query/catalog.h"
#include "query/parser.h"

namespace coverpack {
namespace {

TEST(CoversTest, BoxJoinFigure2) {
  // Figure 2: rho* = 2 via {R1, R2}; tau* = 3 via {R3, R4, R5}.
  Hypergraph box = catalog::BoxJoin();
  EXPECT_EQ(RhoStar(box), Rational(2));
  EXPECT_EQ(TauStar(box), Rational(3));
}

TEST(CoversTest, TriangleIsHalfIntegral) {
  Hypergraph triangle = catalog::Triangle();
  EXPECT_EQ(RhoStar(triangle), Rational(3, 2));
  EXPECT_EQ(TauStar(triangle), Rational(3, 2));
  EdgeWeighting cover = FractionalEdgeCover(triangle);
  EXPECT_TRUE(IsHalfIntegral(cover.weights));
  EXPECT_FALSE(IsIntegral(cover.weights));
}

TEST(CoversTest, LoomisWhitney) {
  // LW(n) has rho* = tau* = n/(n-1) (footnote 3).
  EXPECT_EQ(RhoStar(catalog::LoomisWhitney(3)), Rational(3, 2));
  EXPECT_EQ(TauStar(catalog::LoomisWhitney(3)), Rational(3, 2));
  EXPECT_EQ(RhoStar(catalog::LoomisWhitney(4)), Rational(4, 3));
  EXPECT_EQ(TauStar(catalog::LoomisWhitney(4)), Rational(4, 3));
}

TEST(CoversTest, SemiJoinExampleSection13) {
  // R1(A) |><| R2(A,B) |><| R3(B): rho* = 1 via R2, tau* = psi* = 2.
  Hypergraph q = catalog::SemiJoinExample();
  EXPECT_EQ(RhoStar(q), Rational(1));
  EXPECT_EQ(TauStar(q), Rational(2));
  EXPECT_EQ(EdgeQuasiPackingNumber(q), Rational(2));
}

TEST(CoversTest, StarDualGap) {
  // Star-dual with k satellites: rho* = 1, tau* = psi* = k (Section 1.3).
  for (uint32_t k = 2; k <= 4; ++k) {
    Hypergraph q = catalog::StarDual(k);
    EXPECT_EQ(RhoStar(q), Rational(1)) << "k=" << k;
    EXPECT_EQ(TauStar(q), Rational(k)) << "k=" << k;
    EXPECT_EQ(EdgeQuasiPackingNumber(q), Rational(k)) << "k=" << k;
  }
}

TEST(CoversTest, StarCoverExceedsPacking) {
  // Star(4): every edge shares the hub attribute -> tau* = 1, rho* = 4.
  Hypergraph q = catalog::Star(4);
  EXPECT_EQ(RhoStar(q), Rational(4));
  EXPECT_EQ(TauStar(q), Rational(1));
}

TEST(CoversTest, Cycles) {
  EXPECT_EQ(RhoStar(catalog::Cycle(4)), Rational(2));
  EXPECT_EQ(TauStar(catalog::Cycle(4)), Rational(2));
  EXPECT_EQ(RhoStar(catalog::Cycle(5)), Rational(5, 2));
  EXPECT_EQ(TauStar(catalog::Cycle(5)), Rational(5, 2));
  EXPECT_EQ(RhoStar(catalog::Cycle(6)), Rational(3));
  EXPECT_EQ(TauStar(catalog::Cycle(6)), Rational(3));
}

TEST(CoversTest, Paths) {
  // path5 needs R1, R5 (endpoints) plus one middle relation: rho* = 3.
  EXPECT_EQ(RhoStar(catalog::Path(5)), Rational(3));
  EXPECT_EQ(TauStar(catalog::Path(5)), Rational(3));
  EXPECT_EQ(RhoStar(catalog::Path(4)), Rational(3));
}

TEST(CoversTest, Figure4QueryRhoStar) {
  EXPECT_EQ(RhoStar(catalog::Figure4Query()), Rational(6));
}

TEST(CoversTest, VertexCoverDualityEqualsTauStar) {
  // Vertex covering and edge packing are primal-dual (Section 5.2).
  for (const auto& entry : catalog::StandardRoster()) {
    VertexWeighting x = FractionalVertexCover(entry.query);
    EXPECT_EQ(x.total, TauStar(entry.query)) << entry.name;
  }
}

TEST(CoversTest, QuasiPackingDominatesCoverAndPacking) {
  // psi* >= max(rho*, tau*) [19] -- checked on the whole roster.
  for (const auto& entry : catalog::StandardRoster()) {
    Rational psi = EdgeQuasiPackingNumber(entry.query);
    EXPECT_GE(psi, RhoStar(entry.query)) << entry.name;
    EXPECT_GE(psi, TauStar(entry.query)) << entry.name;
  }
}

TEST(CoversTest, CoverWeightsAreValidCovers) {
  for (const auto& entry : catalog::StandardRoster()) {
    EdgeWeighting cover = FractionalEdgeCover(entry.query);
    for (AttrId v : entry.query.AllAttrs().ToVector()) {
      Rational sum(0);
      for (uint32_t e = 0; e < entry.query.num_edges(); ++e) {
        if (entry.query.edge(e).attrs.Contains(v)) sum += cover.weights[e];
      }
      EXPECT_GE(sum, Rational(1)) << entry.name << " attr " << v;
    }
  }
}

TEST(CoversTest, PackingWeightsAreValidPackings) {
  for (const auto& entry : catalog::StandardRoster()) {
    EdgeWeighting packing = FractionalEdgePacking(entry.query);
    for (AttrId v : entry.query.AllAttrs().ToVector()) {
      Rational sum(0);
      for (uint32_t e = 0; e < entry.query.num_edges(); ++e) {
        if (entry.query.edge(e).attrs.Contains(v)) sum += packing.weights[e];
      }
      EXPECT_LE(sum, Rational(1)) << entry.name << " attr " << v;
    }
  }
}

TEST(CoversTest, DegreeTwoCoverPlusPackingEqualsEdges) {
  // Lemma 5.3 (2): tau* + rho* = |E| for reduced degree-two joins.
  for (const char* text :
       {"R1(A,B), R2(B,C), R3(C,A)", "R1(A,B,C), R2(D,E,F), R3(A,D), R4(B,E), R5(C,F)",
        "R1(X0,X1), R2(X1,X2), R3(X2,X3), R4(X3,X0)"}) {
    Hypergraph q = ParseQuery(text);
    EXPECT_EQ(RhoStar(q) + TauStar(q), Rational(q.num_edges())) << text;
  }
}

TEST(CoversTest, DegreeTwoHalfIntegrality) {
  // Lemma 5.3 (3): degree-two optimal cover/packing is half-integral;
  // (4): integral when there is no odd cycle.
  Hypergraph box = catalog::BoxJoin();
  EXPECT_TRUE(IsIntegral(FractionalEdgeCover(box).weights));
  EXPECT_TRUE(IsIntegral(FractionalEdgePacking(box).weights));
  Hypergraph c5 = catalog::Cycle(5);
  EXPECT_TRUE(IsHalfIntegral(FractionalEdgeCover(c5).weights));
  EXPECT_TRUE(IsHalfIntegral(FractionalEdgePacking(c5).weights));
}

TEST(CoversTest, RhoStarOfAttrsSubset) {
  Hypergraph box = catalog::BoxJoin();
  EXPECT_EQ(RhoStarOfAttrs(box, box.AllAttrs()), Rational(2));
  EXPECT_EQ(RhoStarOfAttrs(box, AttrSet()), Rational(0));
  // Covering only {A}: R1 or R3 with weight 1 suffices.
  AttrId a = *box.FindAttribute("A");
  EXPECT_EQ(RhoStarOfAttrs(box, AttrSet::Single(a)), Rational(1));
}

}  // namespace
}  // namespace coverpack
