/// \file bench_util.h
/// \brief Shared helpers for the per-table / per-figure bench binaries.
///
/// Every binary under bench/ regenerates one display of the paper (see
/// DESIGN.md's per-experiment index) and prints a self-contained text
/// report: the paper's claim, the measured numbers, and a PASS/DEVIATION
/// verdict on the shape-level comparison.

#ifndef COVERPACK_BENCH_BENCH_UTIL_H_
#define COVERPACK_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>
#include <vector>

#include "util/math_util.h"
#include "util/table_printer.h"

namespace coverpack {
namespace bench {

/// Prints the standard banner for a bench binary.
inline void Banner(const std::string& id, const std::string& claim) {
  std::cout << "=============================================================\n";
  std::cout << "EXPERIMENT " << id << "\n";
  std::cout << "Paper claim: " << claim << "\n";
  std::cout << "=============================================================\n";
}

/// Prints a fitted exponent against its theoretical value and returns
/// whether they agree within `tolerance` (absolute, on the exponent).
inline bool ReportExponent(const std::string& label, double fitted, double theory,
                           double tolerance = 0.15) {
  bool ok = std::abs(fitted - theory) <= tolerance;
  std::cout << label << ": fitted exponent " << FormatDouble(fitted, 3) << " vs theory "
            << FormatDouble(theory, 3) << "  [" << (ok ? "MATCH" : "DEVIATION") << "]\n";
  return ok;
}

/// Prints the final verdict line (grep-able by EXPERIMENTS.md tooling).
inline void Verdict(const std::string& id, bool ok) {
  std::cout << "VERDICT " << id << ": " << (ok ? "SHAPE-REPRODUCED" : "DEVIATION") << "\n\n";
}

}  // namespace bench
}  // namespace coverpack

#endif  // COVERPACK_BENCH_BENCH_UTIL_H_
