#include "telemetry/metrics.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "util/audit.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace coverpack {
namespace telemetry {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CP_CHECK_LT(bounds_[i - 1], bounds_[i])
        << "histogram bucket bounds must be strictly increasing ";
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  size_t bucket = bounds_.size();  // overflow bucket by default
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket] += 1;
  total_count_ += 1;
  sum_ += value;
  CP_AUDIT_ONLY(VerifyInvariants("Histogram::Observe");)
}

void Histogram::VerifyInvariants(const char* context) const {
  audit::SimulatorAuditor::NoteCheck();
  CP_CHECK_EQ(counts_.size(), bounds_.size() + 1)
      << "histogram bucket/bound mismatch in " << context << " ";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CP_CHECK_LT(bounds_[i - 1], bounds_[i])
        << "histogram bounds not strictly increasing in " << context << " ";
  }
  uint64_t total = 0;
  for (uint64_t count : counts_) total += count;
  CP_CHECK_EQ(total, total_count_)
      << "histogram bucket counts do not sum to total in " << context << " ";
}

JsonValue Histogram::ToJson() const {
  JsonValue value = JsonValue::Object();
  JsonValue bounds = JsonValue::Array();
  for (double bound : bounds_) bounds.Append(JsonValue::Double(bound));
  JsonValue counts = JsonValue::Array();
  for (uint64_t count : counts_) counts.Append(JsonValue::Uint(count));
  value.Set("bounds", std::move(bounds));
  value.Set("counts", std::move(counts));
  value.Set("total_count", total_count_);
  value.Set("sum", sum_);
  return value;
}

MetricsRegistry::MetricsRegistry(const MetricsRegistry& other) {
  MutexLock lock(other.mutex_);
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  histograms_ = other.histograms_;
  timers_ = other.timers_;
}

MetricsRegistry& MetricsRegistry::operator=(const MetricsRegistry& other) {
  if (this == &other) return *this;
  DualMutexLock lock(mutex_, other.mutex_);
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  histograms_ = other.histograms_;
  timers_ = other.timers_;
  mutator_thread_hash_ = 0;
  return *this;
}

MetricsRegistry::MetricsRegistry(MetricsRegistry&& other) noexcept {
  MutexLock lock(other.mutex_);
  counters_ = std::move(other.counters_);
  gauges_ = std::move(other.gauges_);
  histograms_ = std::move(other.histograms_);
  timers_ = std::move(other.timers_);
}

MetricsRegistry& MetricsRegistry::operator=(MetricsRegistry&& other) noexcept {
  if (this == &other) return *this;
  DualMutexLock lock(mutex_, other.mutex_);
  counters_ = std::move(other.counters_);
  gauges_ = std::move(other.gauges_);
  histograms_ = std::move(other.histograms_);
  timers_ = std::move(other.timers_);
  mutator_thread_hash_ = 0;
  return *this;
}

void MetricsRegistry::NoteMutation() {
#ifdef COVERPACK_AUDIT
  uint64_t self = std::hash<std::thread::id>{}(std::this_thread::get_id());
  if (self == 0) self = 1;  // reserve 0 for "no mutation yet"
  if (mutator_thread_hash_ == 0) mutator_thread_hash_ = self;
  // A pool task mutating the registry is sanctioned parallelism (the mutex
  // serializes it); any other foreign thread is an unsynchronized-usage bug.
  CP_AUDIT(mutator_thread_hash_ == self || ThreadPool::InPoolTask());
#endif
}

void MetricsRegistry::AddCounter(const std::string& name, uint64_t delta) {
  MutexLock lock(mutex_);
  NoteMutation();
  uint64_t& counter = counters_[name];
  CP_AUDIT_ONLY(const uint64_t before = counter;)
  counter += delta;
  // Counters are report-monotone: an update may never move one backwards.
  CP_AUDIT(counter >= before);
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  MutexLock lock(mutex_);
  NoteMutation();
  gauges_[name] = value;
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  MutexLock lock(mutex_);
  NoteMutation();
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(bounds)).first;
  } else {
    CP_CHECK(it->second.bounds() == bounds)
        << "histogram " << name << " re-requested with different bounds ";
  }
  return it->second;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::RecordTimeMs(const std::string& name, double elapsed_ms) {
  MutexLock lock(mutex_);
  NoteMutation();
  auto [it, inserted] = timers_.try_emplace(name);
  TimerStat& stat = it->second;
  if (inserted) {
    stat.min_ms = elapsed_ms;
    stat.max_ms = elapsed_ms;
  } else {
    stat.min_ms = std::min(stat.min_ms, elapsed_ms);
    stat.max_ms = std::max(stat.max_ms, elapsed_ms);
  }
  stat.count += 1;
  stat.total_ms += elapsed_ms;
}

const TimerStat* MetricsRegistry::FindTimer(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? nullptr : &it->second;
}

JsonValue MetricsRegistry::ToJson() const {
  MutexLock lock(mutex_);
  JsonValue value = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, count] : counters_) counters.Set(name, count);
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, gauge] : gauges_) gauges.Set(name, gauge);
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, histogram] : histograms_) histograms.Set(name, histogram.ToJson());
  JsonValue timers = JsonValue::Object();
  for (const auto& [name, stat] : timers_) {
    JsonValue entry = JsonValue::Object();
    entry.Set("count", stat.count);
    entry.Set("total_ms", stat.total_ms);
    entry.Set("min_ms", stat.min_ms);
    entry.Set("max_ms", stat.max_ms);
    timers.Set(name, std::move(entry));
  }
  value.Set("counters", std::move(counters));
  value.Set("gauges", std::move(gauges));
  value.Set("histograms", std::move(histograms));
  value.Set("timers", std::move(timers));
  return value;
}

MetricsRegistry::ScopedTimer::ScopedTimer(MetricsRegistry* registry, std::string name)
    : registry_(registry), name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

double MetricsRegistry::ScopedTimer::ElapsedMs() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

MetricsRegistry::ScopedTimer::~ScopedTimer() { registry_->RecordTimeMs(name_, ElapsedMs()); }

}  // namespace telemetry
}  // namespace coverpack
