/// \file coverpack_bench.cc
/// \brief Unified bench driver: runs any subset of the registered
/// experiments, prints the same text reports the per-display binaries
/// always have, and writes the structured results as BENCH_results.json.
///
/// Usage:
///   coverpack_bench                 # run everything
///   coverpack_bench --list          # list experiment ids and exit
///   coverpack_bench --fast          # only the CI fast subset
///   coverpack_bench --filter table1 # case-insensitive substring, repeatable
///   coverpack_bench --filter='thm5*'  # '*'/'?' terms are whole-id globs
///   coverpack_bench --clients=8 --arrival=bursty --zipf-s=1.4 --no-cache
///                                   # reshape the service_throughput sweep
///   coverpack_bench --out path.json # default: BENCH_results.json in CWD
///   coverpack_bench --threads=8     # pool size (default: hw concurrency)
///   coverpack_bench --compare-serial  # also time --threads=1, stamp speedup
///   coverpack_bench --seed=123      # override every experiment's base seed
///   coverpack_bench --crash-rate=0.05 --straggler-rate=0.25 \
///                   --straggler-severity=8 --drop-rate=0.001 \
///                   --dup-rate=0.001 --fault-seed=7 --max-attempts=4
///                                   # run EVERYTHING under fault injection
///
/// Results are bit-identical at any --threads value (shard-ordered merges +
/// split Rng streams); only the wall-clock fields change. They are also
/// bit-identical under any fault flags — fault injection recovers to the
/// fault-free state and only adds fault.* / recovery.* metrics (see
/// EXPERIMENTS.md).
///
/// Exit status: 0 iff every selected experiment reproduces its claim
/// (verdict SHAPE-REPRODUCED); 1 on any DEVIATION; 2 on usage errors or
/// an empty selection.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_profile.h"
#include "experiments/experiments.h"
#include "experiments/runners.h"
#include "resilience/fault_injector.h"
#include "service/query_service.h"
#include "service/workload_sim.h"
#include "telemetry/json_writer.h"
#include "telemetry/run_report.h"
#include "util/thread_pool.h"

namespace coverpack {
namespace bench {
namespace {

struct DriverOptions {
  bool list = false;
  bool fast_only = false;
  std::vector<std::string> filters;
  std::string out_path = "BENCH_results.json";
  unsigned threads = 0;  // 0 = hardware concurrency
  bool compare_serial = false;
  uint64_t seed = 0;  // 0 = historical per-experiment seeds
  resilience::FaultSpec faults;
  ServiceBenchOverrides service;
  PlannerBenchOverrides planner;
  ClusterBenchOverrides cluster;
};

int Usage(std::ostream& os, int code) {
  os << "usage: coverpack_bench [--list] [--fast] [--filter SUBSTR]... [--out PATH]\n"
        "                       [--threads=N] [--compare-serial] [--seed=U]\n"
        "                       [--crash-rate=R] [--drop-rate=R] [--dup-rate=R]\n"
        "                       [--straggler-rate=R] [--straggler-severity=X]\n"
        "                       [--fault-seed=U] [--max-attempts=N]\n"
        "                       [--clients=N] [--arrival=MODE] [--zipf-s=X]\n"
        "                       [--no-cache] [--planner=MODE]\n"
        "                       [--speeds=SPEC] [--elastic=SCHEDULE]\n"
        "  --list          list experiment ids and exit\n"
        "  --fast          run only the fast subset (the CI default)\n"
        "  --filter TERM   keep experiments whose id or display id matches\n"
        "                  TERM (case-insensitive); repeatable, OR-ed;\n"
        "                  --filter=a,b,c takes a comma-separated list; a\n"
        "                  TERM with '*' or '?' is a whole-id glob\n"
        "                  (--filter='thm5*'), otherwise a substring\n"
        "  --out PATH      where to write the JSON results\n"
        "                  (default BENCH_results.json)\n"
        "  --threads=N     thread-pool size; results are bit-identical at\n"
        "                  any N (default: hardware concurrency)\n"
        "  --compare-serial  run each experiment at --threads=1 first and\n"
        "                  record wall_ms_serial + speedup in the report\n"
        "  --seed=U        override every experiment's base seed (nonzero);\n"
        "                  default: each experiment's historical fixed seeds\n"
        "  --crash-rate=R --drop-rate=R --dup-rate=R --straggler-rate=R\n"
        "  --straggler-severity=X --fault-seed=U --max-attempts=N\n"
        "                  run every experiment under deterministic fault\n"
        "                  injection; results stay bit-identical and the\n"
        "                  recovery cost lands in fault.*/recovery.* metrics\n"
        "  --clients=N --arrival=open|closed|bursty --zipf-s=X --no-cache\n"
        "                  reshape the service_throughput sweep: fix the\n"
        "                  client count, arrival discipline, or popularity\n"
        "                  skew, or run only the cache-off variant\n"
        "  --planner=MODE  auto|one_round|acyclic|output_balanced: force the\n"
        "                  planner_ablation experiment's algorithm choice\n"
        "                  (default auto = the cost-based chooser; forcing\n"
        "                  turns the claims into a diagnostic sweep)\n"
        "  --speeds=SPEC   narrow the cluster_elastic speed sweep to one\n"
        "                  spec: uniform | halves:<speed> | geom:<max> |\n"
        "                  seeded:<seed> | a comma list of speeds\n"
        "  --elastic=SCHEDULE  narrow the cluster_elastic schedule sweep to\n"
        "                  one schedule: none | +<k>@<round>,-<k>@<round>...\n";
  return code;
}

bool Selected(const Experiment& experiment, const DriverOptions& options) {
  if (options.fast_only && !experiment.fast) return false;
  if (options.filters.empty()) return true;
  for (const std::string& filter : options.filters) {
    if (ExperimentMatchesFilter(experiment, filter)) return true;
  }
  return false;
}

int RunDriver(const DriverOptions& options) {
  std::vector<const Experiment*> selected;
  for (const Experiment& experiment : AllExperiments()) {
    if (Selected(experiment, options)) selected.push_back(&experiment);
  }

  if (options.list) {
    for (const Experiment* experiment : selected) {
      std::cout << experiment->id << "\t" << (experiment->fast ? "fast" : "slow") << "\t"
                << experiment->title << "\n";
    }
    return 0;
  }
  if (selected.empty()) {
    std::cerr << "coverpack_bench: no experiment matches the given filters\n";
    return 2;
  }

  unsigned threads = options.threads != 0 ? options.threads : ThreadPool::GlobalThreads();
  SetExperimentBaseSeed(options.seed);
  SetServiceBenchOverrides(options.service);
  SetPlannerBenchOverrides(options.planner);
  SetClusterBenchOverrides(options.cluster);
  // With any fault flag set, the whole selection runs under the injector —
  // including the serial reference runs, which still compare identical.
  std::unique_ptr<resilience::ScopedFaultInjection> injection;
  if (options.faults.active()) {
    injection = std::make_unique<resilience::ScopedFaultInjection>(options.faults);
  }
  std::vector<telemetry::RunReport> reports;
  reports.reserve(selected.size());
  for (const Experiment* experiment : selected) {
    double wall_ms_serial = 0.0;
    if (options.compare_serial && threads > 1) {
      // Serial reference run: same experiment on a one-thread pool. The
      // report it produces is discarded — determinism guarantees it is
      // identical to the parallel one below, wall-clock aside.
      ThreadPool::SetGlobalThreads(1);
      auto serial_start = std::chrono::steady_clock::now();
      telemetry::RunReport serial_report = RunExperiment(*experiment);
      auto serial_end = std::chrono::steady_clock::now();
      wall_ms_serial =
          std::chrono::duration<double, std::milli>(serial_end - serial_start).count();
      std::cout << "\n";
    }
    ThreadPool::SetGlobalThreads(threads);
    auto start = std::chrono::steady_clock::now();
    telemetry::RunReport report = RunExperiment(*experiment);
    auto end = std::chrono::steady_clock::now();
    report.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
    report.threads = threads;
    report.wall_ms_serial = wall_ms_serial;
    if (wall_ms_serial > 0.0 && report.wall_ms > 0.0) {
      report.speedup = wall_ms_serial / report.wall_ms;
    }
    reports.push_back(std::move(report));
    std::cout << "\n";
  }

  // Summary table + machine-readable dump.
  telemetry::JsonValue doc = telemetry::JsonValue::Object();
  doc.Set("schema_version", telemetry::kSchemaVersion);
  doc.Set("suite", "coverpack");
  doc.Set("threads", static_cast<uint64_t>(threads));
  doc.Set("hardware_concurrency",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
  doc.Set("count", static_cast<uint64_t>(reports.size()));
  if (options.seed != 0) doc.Set("base_seed", options.seed);
  if (options.faults.active()) {
    telemetry::JsonValue faults = telemetry::JsonValue::Object();
    faults.Set("seed", options.faults.seed);
    faults.Set("crash_rate", options.faults.crash_rate);
    faults.Set("drop_rate", options.faults.drop_rate);
    faults.Set("duplicate_rate", options.faults.duplicate_rate);
    faults.Set("straggler_rate", options.faults.straggler_rate);
    faults.Set("straggler_severity", options.faults.straggler_severity);
    faults.Set("max_attempts", static_cast<uint64_t>(options.faults.max_attempts));
    doc.Set("faults", std::move(faults));
  }
  telemetry::JsonValue results = telemetry::JsonValue::Array();
  uint32_t reproduced = 0;
  std::cout << "==== coverpack_bench summary (threads=" << threads << ") ====\n";
  for (const telemetry::RunReport& report : reports) {
    reproduced += report.ok ? 1 : 0;
    std::cout << (report.ok ? "  [ok]        " : "  [DEVIATION] ") << report.id << "  ("
              << static_cast<int64_t>(report.wall_ms) << " ms";
    if (report.speedup > 0.0) {
      std::cout << ", serial " << static_cast<int64_t>(report.wall_ms_serial) << " ms, "
                << report.speedup << "x";
    }
    std::cout << ")\n";
    results.Append(report.ToJson());
  }
  doc.Set("results", std::move(results));
  std::cout << reproduced << "/" << reports.size() << " experiments reproduce their claims\n";

  std::ofstream out(options.out_path);
  if (!out) {
    std::cerr << "coverpack_bench: cannot open " << options.out_path << " for writing\n";
    return 2;
  }
  doc.Write(out);
  out << "\n";
  out.close();
  std::cout << "wrote " << options.out_path << "\n";

  return reproduced == reports.size() ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace coverpack

int main(int argc, char** argv) {
  coverpack::bench::DriverOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--fast") {
      options.fast_only = true;
    } else if (arg == "--filter") {
      if (i + 1 >= argc) return coverpack::bench::Usage(std::cerr, 2);
      options.filters.push_back(argv[++i]);
    } else if (arg.rfind("--filter=", 0) == 0) {
      // --filter=a,b,c — comma-separated OR-ed substrings.
      std::string list = arg.substr(9);
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        if (comma > start) options.filters.push_back(list.substr(start, comma - start));
        start = comma + 1;
      }
    } else if (arg == "--out") {
      if (i + 1 >= argc) return coverpack::bench::Usage(std::cerr, 2);
      options.out_path = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      long value = std::strtol(arg.c_str() + 10, nullptr, 10);
      if (value < 1) return coverpack::bench::Usage(std::cerr, 2);
      options.threads = static_cast<unsigned>(value);
    } else if (arg == "--threads") {
      if (i + 1 >= argc) return coverpack::bench::Usage(std::cerr, 2);
      long value = std::strtol(argv[++i], nullptr, 10);
      if (value < 1) return coverpack::bench::Usage(std::cerr, 2);
      options.threads = static_cast<unsigned>(value);
    } else if (arg == "--compare-serial") {
      options.compare_serial = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
      if (options.seed == 0) return coverpack::bench::Usage(std::cerr, 2);
    } else if (arg.rfind("--crash-rate=", 0) == 0) {
      options.faults.crash_rate = std::strtod(arg.c_str() + 13, nullptr);
    } else if (arg.rfind("--drop-rate=", 0) == 0) {
      options.faults.drop_rate = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--dup-rate=", 0) == 0) {
      options.faults.duplicate_rate = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--straggler-rate=", 0) == 0) {
      options.faults.straggler_rate = std::strtod(arg.c_str() + 17, nullptr);
    } else if (arg.rfind("--straggler-severity=", 0) == 0) {
      options.faults.straggler_severity = std::strtod(arg.c_str() + 21, nullptr);
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      options.faults.seed = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--max-attempts=", 0) == 0) {
      long value = std::strtol(arg.c_str() + 15, nullptr, 10);
      if (value < 1) return coverpack::bench::Usage(std::cerr, 2);
      options.faults.max_attempts = static_cast<uint32_t>(value);
    } else if (arg.rfind("--clients=", 0) == 0) {
      long value = std::strtol(arg.c_str() + 10, nullptr, 10);
      if (value < 1) return coverpack::bench::Usage(std::cerr, 2);
      options.service.clients = static_cast<uint32_t>(value);
    } else if (arg.rfind("--arrival=", 0) == 0) {
      options.service.arrival = arg.substr(10);
      if (!coverpack::service::ParseArrivalMode(options.service.arrival).has_value()) {
        std::cerr << "coverpack_bench: --arrival must be open, closed, or bursty\n";
        return coverpack::bench::Usage(std::cerr, 2);
      }
    } else if (arg.rfind("--zipf-s=", 0) == 0) {
      options.service.zipf_skew = std::strtod(arg.c_str() + 9, nullptr);
      if (options.service.zipf_skew <= 0.0) return coverpack::bench::Usage(std::cerr, 2);
    } else if (arg == "--no-cache") {
      options.service.no_cache = true;
    } else if (arg.rfind("--planner=", 0) == 0) {
      options.planner.mode = arg.substr(10);
      if (!coverpack::service::ParsePlannerMode(options.planner.mode).has_value()) {
        std::cerr << "coverpack_bench: --planner must be auto, one_round, acyclic, "
                     "or output_balanced\n";
        return coverpack::bench::Usage(std::cerr, 2);
      }
    } else if (arg.rfind("--speeds=", 0) == 0) {
      options.cluster.speeds = arg.substr(9);
      if (!coverpack::cluster::ParseSpeedSpec(options.cluster.speeds).has_value()) {
        std::cerr << "coverpack_bench: --speeds must be uniform, halves:<speed>, "
                     "geom:<max>, seeded:<seed>, or a comma list of speeds\n";
        return coverpack::bench::Usage(std::cerr, 2);
      }
    } else if (arg.rfind("--elastic=", 0) == 0) {
      options.cluster.elastic = arg.substr(10);
      if (!coverpack::cluster::ParseElasticSpec(options.cluster.elastic).has_value()) {
        std::cerr << "coverpack_bench: --elastic must be none or a comma list of "
                     "+<k>@<round> / -<k>@<round> events with round >= 1\n";
        return coverpack::bench::Usage(std::cerr, 2);
      }
    } else if (arg == "--help" || arg == "-h") {
      return coverpack::bench::Usage(std::cout, 0);
    } else {
      std::cerr << "coverpack_bench: unknown argument " << arg << "\n";
      return coverpack::bench::Usage(std::cerr, 2);
    }
  }
  return coverpack::bench::RunDriver(options);
}
