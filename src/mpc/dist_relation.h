/// \file dist_relation.h
/// \brief A relation partitioned across the servers of a Cluster.

#ifndef COVERPACK_MPC_DIST_RELATION_H_
#define COVERPACK_MPC_DIST_RELATION_H_

#include <vector>

#include "mpc/cluster.h"
#include "relation/relation.h"

namespace coverpack {

/// One shard per server of a cluster. Shards share the schema.
class DistRelation {
 public:
  DistRelation() = default;

  /// Empty shards over `attrs` for a cluster of p servers.
  DistRelation(AttrSet attrs, uint32_t p) : attrs_(attrs), shards_(p, Relation(attrs)) {}

  AttrSet attrs() const { return attrs_; }
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  Relation& shard(uint32_t s) { return shards_[s]; }
  const Relation& shard(uint32_t s) const { return shards_[s]; }

  size_t TotalSize() const {
    size_t total = 0;
    for (const auto& shard : shards_) total += shard.size();
    return total;
  }

  /// Per-shard row counts — the lightweight round-boundary checkpoint of
  /// the resilience layer. Shards are append-only between round boundaries,
  /// so truncating each shard back to a recorded size restores the
  /// distributed state bit-exactly (see resilience/checkpoint.h).
  std::vector<size_t> ShardSizes() const;

  /// Restores every shard to a size recorded by ShardSizes(). Each shard
  /// must currently hold at least as many rows as its recorded size.
  void TruncateShards(const std::vector<size_t>& sizes);

  /// Collects all shards into one relation (driver-side; no load charged —
  /// use only for verification or statistics the paper computes with
  /// dedicated O(N/p) primitives).
  Relation Gather() const {
    Relation all(attrs_);
    all.Reserve(TotalSize());
    for (const auto& shard : shards_) all.AppendAll(shard);
    return all;
  }

  /// Distributes `data` round-robin over the cluster, charging each server
  /// its received tuple count in `round`. This is how fresh (sub)instances
  /// arrive at the server group responsible for them.
  static DistRelation Scatter(Cluster* cluster, const Relation& data, uint32_t round);

  /// Like Scatter but charges nothing: models the *initial* placement of
  /// the input (data starts distributed; only communication counts).
  static DistRelation InitialPlacement(const Cluster& cluster, const Relation& data);

 private:
  AttrSet attrs_;
  std::vector<Relation> shards_;
};

}  // namespace coverpack

#endif  // COVERPACK_MPC_DIST_RELATION_H_
