/// \file cluster_test.cc
/// \brief Unit tests for the heterogeneous/elastic cluster subsystem:
/// speed/elastic spec parsing, profile epoch resolution, proportional
/// apportionment, speed-weighted routing, placement policy, state
/// migration, and the elastic pipeline's determinism and chaos contracts.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "cluster/cluster_profile.h"
#include "cluster/elastic.h"
#include "cluster/routing.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "mpc/exchange.h"
#include "query/attr_set.h"
#include "relation/relation.h"
#include "report_compare.h"
#include "resilience/checkpoint.h"
#include "resilience/cost_model.h"
#include "resilience/fault_injector.h"
#include "resilience/fault_plan.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace coverpack {
namespace cluster {
namespace {

using testutil::TrackersEqual;

// ---------------------------------------------------------------- parsing

TEST(SpeedSpecTest, ParsesEveryKindAndRoundTrips) {
  for (const char* text : {"uniform", "halves:4", "geom:8", "seeded:7", "1,2,4"}) {
    auto spec = ParseSpeedSpec(text);
    ASSERT_TRUE(spec.has_value()) << text;
    EXPECT_EQ(spec->ToString(), text);
  }
  EXPECT_EQ(ParseSpeedSpec("")->kind, SpeedSpec::Kind::kUniform);
  EXPECT_EQ(ParseSpeedSpec("halves:2.5")->param, 2.5);
}

TEST(SpeedSpecTest, RejectsMalformedSpecs) {
  for (const char* text :
       {"halves:", "halves:0", "halves:-2", "geom:0.5", "seeded:", "seeded:x", "1,,2",
        "1,-3", "0", "nonsense", "geom:", "halves:4x"}) {
    EXPECT_FALSE(ParseSpeedSpec(text).has_value()) << text;
  }
}

TEST(ElasticSpecTest, ParsesAndCanonicalizesSchedules) {
  EXPECT_TRUE(ParseElasticSpec("none")->empty());
  auto spec = ParseElasticSpec("-1@3,+2@2");
  ASSERT_TRUE(spec.has_value());
  ASSERT_EQ(spec->events.size(), 2u);
  EXPECT_EQ(spec->events[0].round, 2u);
  EXPECT_EQ(spec->events[0].delta, 2);
  EXPECT_EQ(spec->events[1].round, 3u);
  EXPECT_EQ(spec->events[1].delta, -1);
  EXPECT_EQ(spec->ToString(), "+2@2,-1@3");
  // Same-round events merge; a zero net delta drops the event.
  EXPECT_TRUE(ParseElasticSpec("+2@4,-2@4")->empty());
}

TEST(ElasticSpecTest, RejectsMalformedSchedules) {
  for (const char* text : {"+2@0", "+x@2", "+2@", "@", "+2", "+2@3,"}) {
    EXPECT_FALSE(ParseElasticSpec(text).has_value()) << text;
  }
}

// --------------------------------------------------------- apportionment

TEST(ProportionalSharesTest, SumsExactlyAndFollowsWeights) {
  const auto shares = ProportionalShares({4.0, 1.0, 1.0, 1.0, 1.0}, 800);
  EXPECT_EQ(shares, (std::vector<uint64_t>{400, 100, 100, 100, 100}));
  uint64_t sum = 0;
  for (uint64_t s : ProportionalShares({1.1, 2.3, 0.7}, 1001)) sum += s;
  EXPECT_EQ(sum, 1001u);
}

TEST(ProportionalSharesTest, BreaksTiesTowardLowerIndex) {
  // 10 over 4 equal weights: remainders tie, so the two extra units go to
  // the lowest indices.
  EXPECT_EQ(ProportionalShares({1.0, 1.0, 1.0, 1.0}, 10),
            (std::vector<uint64_t>{3, 3, 2, 2}));
}

// ---------------------------------------------------------------- profile

TEST(ClusterProfileTest, ResolvesJoinAndLeaveEpochs) {
  const ClusterProfile profile(4, SpeedSpec{}, *ParseElasticSpec("+2@2,-1@3"));
  EXPECT_EQ(profile.num_slots(), 6u);
  EXPECT_EQ(profile.EpochForRound(0).active, (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(profile.EpochForRound(1).active, (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(profile.EpochForRound(2).active, (std::vector<uint32_t>{0, 1, 2, 3, 4, 5}));
  // Leaves drop the highest active slot.
  EXPECT_EQ(profile.EpochForRound(3).active, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(profile.EpochForRound(99).active, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST(ClusterProfileTest, JoinsReuseLowestDepartedSlots) {
  const ClusterProfile profile(4, SpeedSpec{}, *ParseElasticSpec("-2@2,+1@3"));
  EXPECT_EQ(profile.EpochForRound(2).active, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(profile.EpochForRound(3).active, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(profile.num_slots(), 4u);
}

TEST(ClusterProfileTest, SpeedsAreContentKeyedAndPure) {
  const auto spec = *ParseSpeedSpec("seeded:42");
  const ClusterProfile a(8, spec, ElasticSpec{});
  const ClusterProfile b(8, spec, ElasticSpec{});
  for (uint32_t slot = 0; slot < 8; ++slot) {
    EXPECT_EQ(a.SpeedOfSlot(slot), b.SpeedOfSlot(slot));
    EXPECT_GE(a.SpeedOfSlot(slot), 1.0);
    EXPECT_LT(a.SpeedOfSlot(slot), 8.0);
  }
  EXPECT_EQ(a.ContentKey(), b.ContentKey());
  const ClusterProfile c(8, *ParseSpeedSpec("seeded:43"), ElasticSpec{});
  EXPECT_NE(a.ContentKey(), c.ContentKey());
  const ClusterProfile d(8, spec, *ParseElasticSpec("+1@2"));
  EXPECT_NE(a.ContentKey(), d.ContentKey());
}

TEST(ClusterProfileTest, NormalizedSpeedsHaveMeanOne) {
  const ClusterProfile profile(6, *ParseSpeedSpec("halves:4"), ElasticSpec{});
  const auto speeds = profile.NormalizedActiveSpeeds(profile.EpochForRound(0));
  double sum = 0.0;
  for (double s : speeds) sum += s;
  EXPECT_NEAR(sum, static_cast<double>(speeds.size()), 1e-9);
}

// ---------------------------------------------------------------- routing

Relation MakeRelation(uint32_t width, size_t rows, uint64_t seed) {
  Relation data(AttrSet::FirstN(width));
  Rng rng(seed);
  std::vector<Value> buffer;
  buffer.reserve(rows * width);
  for (size_t i = 0; i < rows * width; ++i) buffer.push_back(rng.Uniform(97));
  data.AppendRows(buffer.data(), rows);
  return data;
}

TEST(SpeedWeightedRouterTest, ScatterTargetsAreExactLargestRemainderShares) {
  const SpeedWeightedRouter router({0, 1, 2}, {2.0, 1.0, 1.0});
  EXPECT_EQ(router.ScatterTargets(100), (std::vector<uint64_t>{50, 25, 25}));
  uint64_t sum = 0;
  for (uint64_t t : router.ScatterTargets(101)) sum += t;
  EXPECT_EQ(sum, 101u);
}

TEST(SpeedWeightedRouterTest, WeightedScatterDeliversExactBlocks) {
  const Relation data = MakeRelation(2, 1000, 0x5ca77e);
  const SpeedWeightedRouter router({1, 3, 4}, {3.0, 1.0, 1.0});
  Cluster cluster(5);
  std::vector<Relation> shards(5, Relation(data.attrs()));
  mpc::ExchangePlan plan(5);
  AddWeightedScatter(&plan, data, router, /*record=*/true);
  const mpc::ExchangeStats stats = mpc::Exchange::Execute(
      &cluster, 0, plan, [&shards](size_t, uint32_t s) { return &shards[s]; },
      "test_scatter");
  EXPECT_EQ(stats.planned, 1000u);
  EXPECT_EQ(stats.delivered, 1000u);
  EXPECT_EQ(stats.charged, 1000u);
  EXPECT_EQ(shards[1].size(), 600u);
  EXPECT_EQ(shards[3].size(), 200u);
  EXPECT_EQ(shards[4].size(), 200u);
  EXPECT_EQ(shards[0].size(), 0u);
  EXPECT_EQ(shards[2].size(), 0u);
  // Scatter preserves row order within blocks: the first 600 rows land on
  // slot 1 in input order.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(shards[1].row(i)[0], data.row(i)[0]);
  }
}

TEST(SpeedWeightedRouterTest, HashPartitionKeepsKeysTogether) {
  const Relation data = MakeRelation(2, 2000, 0x9a57);
  const SpeedWeightedRouter router({0, 1, 2, 3}, {4.0, 2.0, 1.0, 1.0});
  Cluster cluster(4);
  std::vector<Relation> shards(4, Relation(data.attrs()));
  mpc::ExchangePlan plan(4);
  AddWeightedHashPartition(&plan, data, {0}, /*salt=*/7, router, /*record=*/true);
  const mpc::ExchangeStats stats = mpc::Exchange::Execute(
      &cluster, 0, plan, [&shards](size_t, uint32_t s) { return &shards[s]; },
      "test_partition");
  EXPECT_EQ(stats.delivered, 2000u);
  std::map<Value, uint32_t> home;
  size_t delivered = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    delivered += shards[s].size();
    for (size_t i = 0; i < shards[s].size(); ++i) {
      const Value key = shards[s].row(i)[0];
      auto [it, inserted] = home.emplace(key, s);
      EXPECT_EQ(it->second, s) << "key " << key << " split across servers";
    }
  }
  EXPECT_EQ(delivered, 2000u);
}

TEST(SpeedWeightedRouterTest, PickByHashIsPureAndInRange) {
  const SpeedWeightedRouter router({2, 5, 9}, {1.0, 2.0, 4.0});
  for (uint64_t h : {0ull, 1ull, 0x123456789abcdefull, ~0ull}) {
    const uint32_t pick = router.PickByHash(h);
    EXPECT_EQ(pick, router.PickByHash(h));
    EXPECT_TRUE(pick == 2 || pick == 5 || pick == 9);
  }
}

// -------------------------------------------------------------- placement

TEST(PlacementTest, ChoosePlacementNeverLosesToIdentity) {
  LoadTracker tracker(4);
  tracker.Add(0, 0, 100);
  tracker.Add(0, 1, 100);
  tracker.Add(0, 2, 100);
  tracker.Add(0, 3, 100);
  tracker.Add(1, 0, 400);
  tracker.Add(1, 1, 10);

  for (const char* text : {"uniform", "halves:4", "geom:8", "seeded:3"}) {
    const ClusterProfile profile(4, *ParseSpeedSpec(text), ElasticSpec{});
    const auto speeds = profile.NormalizedActiveSpeeds(profile.EpochForRound(0));
    const PlacementChoice choice = ChoosePlacement(tracker, speeds);
    EXPECT_LE(choice.makespan, choice.identity_makespan + 1e-9) << text;
    // The identity fold must agree with the standalone-speed cost model.
    const resilience::MakespanBreakdown direct =
        resilience::SimulateMakespan(tracker, speeds);
    EXPECT_NEAR(direct.makespan, choice.identity_makespan,
                1e-9 * (1.0 + choice.identity_makespan))
        << text;
  }
}

TEST(PlacementTest, LptFoldsHeavyVirtualServersOntoFastMachines) {
  // One round, loads {90, 10, 10, 10}; speeds {3, 1, 1, 1}. Identity puts
  // the heavy virtual server on a unit-speed machine only if it sits at an
  // index != 0; LPT must put it on the speed-3 machine.
  LoadTracker tracker(4);
  tracker.Add(0, 0, 10);
  tracker.Add(0, 1, 90);
  tracker.Add(0, 2, 10);
  tracker.Add(0, 3, 10);
  const std::vector<double> speeds{3.0, 1.0, 1.0, 1.0};
  const PlacementChoice choice = ChoosePlacement(tracker, speeds);
  EXPECT_TRUE(choice.lpt_won);
  EXPECT_EQ(choice.assignment[1], 0u);  // heavy load -> fast machine
  EXPECT_LT(choice.makespan, choice.identity_makespan);
}

TEST(PlacementTest, UniformSpeedsKeepIdentityMakespan) {
  LoadTracker tracker(3);
  tracker.Add(0, 0, 5);
  tracker.Add(0, 1, 7);
  tracker.Add(0, 2, 11);
  const PlacementChoice choice = ChoosePlacement(tracker, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(choice.makespan, choice.identity_makespan);
}

TEST(CostModelTest, VectorOverloadMatchesUniformFaultPlan) {
  // Satellite: SimulateMakespan decoupled from the straggler schedule. An
  // all-ones vector and an empty FaultPlan are the same cost model.
  LoadTracker tracker(3);
  tracker.Add(0, 0, 40);
  tracker.Add(0, 2, 90);
  tracker.Add(1, 1, 25);
  const auto from_vector =
      resilience::SimulateMakespan(tracker, std::vector<double>{1.0, 1.0, 1.0});
  const auto from_plan = resilience::SimulateMakespan(tracker, resilience::FaultPlan());
  EXPECT_DOUBLE_EQ(from_vector.makespan, from_plan.makespan);
  EXPECT_DOUBLE_EQ(from_vector.uniform_makespan, from_plan.uniform_makespan);
  EXPECT_EQ(from_vector.rounds, from_plan.rounds);
  // Sub-unit speeds count as straggler bottlenecks, mirroring FaultPlan.
  const auto degraded =
      resilience::SimulateMakespan(tracker, std::vector<double>{1.0, 1.0, 0.5});
  EXPECT_DOUBLE_EQ(degraded.round_makespans[0], 180.0);
  EXPECT_EQ(degraded.straggler_bottlenecks, 1u);
}

// -------------------------------------------------------------- migration

DistRelation MakeDistState(const std::vector<uint32_t>& members,
                           const std::vector<size_t>& sizes, uint32_t num_slots) {
  DistRelation state(AttrSet::FirstN(1), num_slots);
  Rng rng(0x0dd5);
  for (size_t i = 0; i < members.size(); ++i) {
    std::vector<Value> buffer(sizes[i]);
    for (Value& v : buffer) v = rng.Next();
    state.shard(members[i]).AppendRows(buffer.data(), sizes[i]);
  }
  return state;
}

TEST(MigrationTest, JoinRebalancesToSpeedProportionalShares) {
  Cluster cluster(3);
  DistRelation state = MakeDistState({0, 1}, {600, 400}, 3);
  resilience::RoundCheckpointStore checkpoints;
  const MigrationResult result =
      MigrateToEpoch(&cluster, &state, {0, 1}, {0, 1, 2}, {2.0, 1.0, 1.0},
                     /*round=*/1, &checkpoints);
  EXPECT_EQ(result.servers_joined, 1u);
  EXPECT_EQ(result.servers_left, 0u);
  EXPECT_EQ(state.shard(0).size(), 500u);
  EXPECT_EQ(state.shard(1).size(), 250u);
  EXPECT_EQ(state.shard(2).size(), 250u);
  EXPECT_EQ(state.TotalSize(), 1000u);
  // Moves: 100 off slot 0 + 150 off slot 1, all to the joiner.
  EXPECT_EQ(result.stats.planned, 250u);
  EXPECT_EQ(result.stats.delivered, 250u);
  EXPECT_EQ(result.tuples_to_joiners, 250u);
  EXPECT_EQ(result.tuples_from_leavers, 0u);
  // The migration is charged like any exchange.
  EXPECT_EQ(cluster.tracker().At(1, 2), 250u);
  // And checkpointed before it moves anything.
  EXPECT_EQ(checkpoints.num_captures(), 1u);
  EXPECT_EQ(checkpoints.total_tuples(), 1000u);
}

TEST(MigrationTest, LeaveDrainsDepartingServersCompletely) {
  Cluster cluster(3);
  DistRelation state = MakeDistState({0, 1, 2}, {300, 300, 400}, 3);
  const MigrationResult result = MigrateToEpoch(&cluster, &state, {0, 1, 2}, {0, 1},
                                                {1.0, 1.0}, /*round=*/2, nullptr);
  EXPECT_EQ(result.servers_left, 1u);
  EXPECT_EQ(state.shard(2).size(), 0u);
  EXPECT_EQ(state.shard(0).size(), 500u);
  EXPECT_EQ(state.shard(1).size(), 500u);
  EXPECT_EQ(result.tuples_from_leavers, 400u);
  EXPECT_EQ(result.stats.planned, 400u);
}

TEST(MigrationTest, UnchangedMembershipIsAStrictNoOp) {
  Cluster cluster(2);
  DistRelation state = MakeDistState({0, 1}, {999, 1}, 2);
  resilience::RoundCheckpointStore checkpoints;
  const MigrationResult result = MigrateToEpoch(&cluster, &state, {0, 1}, {0, 1},
                                                {1.0, 1.0}, /*round=*/1, &checkpoints);
  // Even though 999/1 is far from the 500/500 target, unchanged membership
  // must not move a row — that is what keeps no-event elastic runs
  // byte-identical to fixed-p runs.
  EXPECT_EQ(result.stats.planned, 0u);
  EXPECT_EQ(state.shard(0).size(), 999u);
  EXPECT_EQ(checkpoints.num_captures(), 0u);
  EXPECT_EQ(cluster.tracker().MaxLoad(), 0u);
}

TEST(MigrationTest, RecoversBitIdenticallyUnderCrashStorm) {
  const auto run = [](bool faulted) {
    Cluster cluster(4);
    DistRelation state = MakeDistState({0, 1, 2, 3}, {4000, 100, 3000, 900}, 4);
    MigrationResult result;
    if (faulted) {
      resilience::FaultSpec spec;
      spec.seed = 0xbad;
      spec.crash_rate = 0.5;
      spec.drop_rate = 0.01;
      spec.duplicate_rate = 0.01;
      resilience::ScopedFaultInjection injection(spec);
      result = MigrateToEpoch(&cluster, &state, {0, 1, 2, 3}, {0, 1}, {1.0, 3.0},
                              /*round=*/1, nullptr);
    } else {
      result = MigrateToEpoch(&cluster, &state, {0, 1, 2, 3}, {0, 1}, {1.0, 3.0},
                              /*round=*/1, nullptr);
    }
    return std::make_tuple(state.shard(0).raw(), state.shard(1).raw(),
                           cluster.tracker(), result.stats.planned);
  };
  const auto clean = run(false);
  const auto stormy = run(true);
  EXPECT_EQ(std::get<0>(clean), std::get<0>(stormy));
  EXPECT_EQ(std::get<1>(clean), std::get<1>(stormy));
  EXPECT_TRUE(TrackersEqual(std::get<2>(clean), std::get<2>(stormy)));
  EXPECT_EQ(std::get<3>(clean), std::get<3>(stormy));
}

// --------------------------------------------------------------- pipeline

class ElasticPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = ThreadPool::GlobalThreads(); }
  void TearDown() override { ThreadPool::SetGlobalThreads(saved_threads_); }

 private:
  unsigned saved_threads_ = 1;
};

TEST_F(ElasticPipelineTest, IsBitIdenticalAcrossThreadCounts) {
  ElasticRunConfig config;
  config.speeds = *ParseSpeedSpec("geom:8");
  config.schedule = *ParseElasticSpec("+2@2,-3@4");
  config.rows = 4000;
  ThreadPool::SetGlobalThreads(1);
  const ElasticRunResult serial = RunElasticPipeline(config);
  ThreadPool::SetGlobalThreads(4);
  const ElasticRunResult parallel = RunElasticPipeline(config);
  EXPECT_EQ(serial.content_hash, parallel.content_hash);
  EXPECT_EQ(serial.final_shard_sizes, parallel.final_shard_sizes);
  EXPECT_EQ(serial.tuples_migrated, parallel.tuples_migrated);
  EXPECT_TRUE(TrackersEqual(serial.tracker, parallel.tracker));
  EXPECT_EQ(serial.epochs, 3u);
  EXPECT_EQ(serial.final_rows, 4000u);
}

TEST_F(ElasticPipelineTest, RecoversBitIdenticallyUnderCrashStorm) {
  ElasticRunConfig config;
  config.speeds = *ParseSpeedSpec("halves:4");
  config.schedule = *ParseElasticSpec("+2@2,-2@4");
  config.rows = 4000;
  const ElasticRunResult clean = RunElasticPipeline(config);
  resilience::FaultSpec spec;
  spec.seed = 0x57011;
  spec.crash_rate = 0.25;
  spec.drop_rate = 0.005;
  spec.duplicate_rate = 0.005;
  resilience::ScopedFaultInjection injection(spec);
  const ElasticRunResult stormy = RunElasticPipeline(config);
  EXPECT_EQ(clean.content_hash, stormy.content_hash);
  EXPECT_EQ(clean.final_shard_sizes, stormy.final_shard_sizes);
  EXPECT_TRUE(TrackersEqual(clean.tracker, stormy.tracker));
}

TEST_F(ElasticPipelineTest, ConservesRowsOnEveryEpochBoundary) {
  ElasticRunConfig config;
  config.speeds = *ParseSpeedSpec("seeded:11");
  config.schedule = *ParseElasticSpec("+3@1,-4@3,+1@5");
  config.rows = 3000;
  const ElasticRunResult result = RunElasticPipeline(config);
  EXPECT_EQ(result.final_rows, 3000u);
  EXPECT_EQ(result.epochs, 4u);
  EXPECT_GT(result.tuples_migrated, 0u);
  EXPECT_EQ(result.checkpoints.num_captures(), 3u);
  // Final membership = 8 + 3 - 4 + 1 = 8 active slots; every row on them.
  size_t occupied_rows = 0;
  for (size_t size : result.final_shard_sizes) occupied_rows += size;
  EXPECT_EQ(occupied_rows, 3000u);
}

}  // namespace
}  // namespace cluster
}  // namespace coverpack
