/// Serialization guarantees of the telemetry JSON writer: RFC 8259 string
/// escaping, non-finite doubles rendered as null, insertion-ordered
/// objects, exact integer round-trips, and nesting. BENCH_results.json is
/// only as trustworthy as these corners.

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "telemetry/json_writer.h"

namespace coverpack {
namespace telemetry {
namespace {

std::string Escaped(const std::string& raw) {
  std::string out;
  AppendJsonEscaped(raw, &out);
  return out;
}

TEST(JsonEscapeTest, PlainStringsPassThroughQuoted) {
  EXPECT_EQ(Escaped("hello"), "\"hello\"");
  EXPECT_EQ(Escaped(""), "\"\"");
}

TEST(JsonEscapeTest, QuotesAndBackslashes) {
  EXPECT_EQ(Escaped("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(Escaped("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(Escaped("C:\\path\\\"x\""), "\"C:\\\\path\\\\\\\"x\\\"\"");
}

TEST(JsonEscapeTest, NamedControlCharacters) {
  EXPECT_EQ(Escaped("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(Escaped("a\tb"), "\"a\\tb\"");
  EXPECT_EQ(Escaped("a\rb"), "\"a\\rb\"");
  EXPECT_EQ(Escaped("a\bb"), "\"a\\bb\"");
  EXPECT_EQ(Escaped("a\fb"), "\"a\\fb\"");
}

TEST(JsonEscapeTest, OtherControlCharactersUseUnicodeEscapes) {
  EXPECT_EQ(Escaped(std::string(1, '\x01')), "\"\\u0001\"");
  EXPECT_EQ(Escaped(std::string(1, '\x1f')), "\"\\u001f\"");
  EXPECT_EQ(Escaped(std::string(1, '\0')), "\"\\u0000\"");
}

TEST(JsonEscapeTest, HighBytesPassThroughUntouched) {
  // UTF-8 multi-byte sequences are valid JSON string content as-is.
  EXPECT_EQ(Escaped("\xc3\xa9"), "\"\xc3\xa9\"");
}

TEST(JsonWriterTest, ScalarsCompactForm) {
  EXPECT_EQ(JsonValue::Null().ToString(0), "null");
  EXPECT_EQ(JsonValue::Bool(true).ToString(0), "true");
  EXPECT_EQ(JsonValue::Bool(false).ToString(0), "false");
  EXPECT_EQ(JsonValue::Int(-42).ToString(0), "-42");
  EXPECT_EQ(JsonValue::Str("x").ToString(0), "\"x\"");
}

TEST(JsonWriterTest, IntegersRoundTripExactly) {
  // 2^63 - 1 and 2^64 - 1 are not representable as doubles; the writer
  // must not route them through one.
  EXPECT_EQ(JsonValue::Int(std::numeric_limits<int64_t>::max()).ToString(0),
            "9223372036854775807");
  EXPECT_EQ(JsonValue::Int(std::numeric_limits<int64_t>::min()).ToString(0),
            "-9223372036854775808");
  EXPECT_EQ(JsonValue::Uint(std::numeric_limits<uint64_t>::max()).ToString(0),
            "18446744073709551615");
}

TEST(JsonWriterTest, NonFiniteDoublesRenderAsNull) {
  EXPECT_EQ(JsonValue::Double(std::nan("")).ToString(0), "null");
  EXPECT_EQ(JsonValue::Double(std::numeric_limits<double>::infinity()).ToString(0),
            "null");
  EXPECT_EQ(JsonValue::Double(-std::numeric_limits<double>::infinity()).ToString(0),
            "null");
}

TEST(JsonWriterTest, FiniteDoublesStayNumeric) {
  EXPECT_EQ(JsonValue::Double(0.5).ToString(0), "0.5");
  // Integral-valued doubles keep a decimal point so readers parse them as
  // floating point.
  std::string one = JsonValue::Double(1.0).ToString(0);
  EXPECT_NE(one.find('.'), std::string::npos) << one;
  EXPECT_EQ(one.substr(0, 2), "1.");
}

TEST(JsonWriterTest, ObjectKeysKeepInsertionOrder) {
  JsonValue object = JsonValue::Object();
  object.Set("zulu", 1);
  object.Set("alpha", 2);
  object.Set("mike", 3);
  EXPECT_EQ(object.ToString(0), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");
}

TEST(JsonWriterTest, SetExistingKeyOverwritesInPlace) {
  JsonValue object = JsonValue::Object();
  object.Set("a", 1);
  object.Set("b", 2);
  object.Set("a", 9);
  EXPECT_EQ(object.size(), 2u);
  EXPECT_EQ(object.ToString(0), "{\"a\":9,\"b\":2}");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonValue inner = JsonValue::Object();
  inner.Set("key with \"quotes\"", JsonValue::Null());
  JsonValue array = JsonValue::Array();
  array.Append(JsonValue::Int(1));
  array.Append(std::move(inner));
  array.Append(JsonValue::Array());
  JsonValue root = JsonValue::Object();
  root.Set("items", std::move(array));
  EXPECT_EQ(root.ToString(0),
            "{\"items\":[1,{\"key with \\\"quotes\\\"\":null},[]]}");
}

TEST(JsonWriterTest, EmptyContainers) {
  EXPECT_EQ(JsonValue::Array().ToString(0), "[]");
  EXPECT_EQ(JsonValue::Object().ToString(0), "{}");
  EXPECT_EQ(JsonValue::Array().ToString(2), "[]");
  EXPECT_EQ(JsonValue::Object().ToString(2), "{}");
}

TEST(JsonWriterTest, PrettyPrintingIndentsNesting) {
  JsonValue root = JsonValue::Object();
  JsonValue array = JsonValue::Array();
  array.Append(JsonValue::Int(1));
  root.Set("a", std::move(array));
  std::ostringstream out;
  root.Write(out, 2);
  EXPECT_EQ(out.str(), "{\n  \"a\": [\n    1\n  ]\n}");
}

TEST(JsonWriterTest, SizeCountsElements) {
  JsonValue array = JsonValue::Array();
  EXPECT_EQ(array.size(), 0u);
  array.Append(JsonValue::Int(1));
  array.Append(JsonValue::Int(2));
  EXPECT_EQ(array.size(), 2u);
}

}  // namespace
}  // namespace telemetry
}  // namespace coverpack
