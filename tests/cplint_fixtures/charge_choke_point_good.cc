// cplint fixture: moves tuples the sanctioned way, through Exchange.
void Route(Cluster& cluster, ExchangePlan& plan) {
  Exchange::Execute(cluster, plan);  // charging happens inside
}
