// cplint fixture: a suppressed ambient RNG.
#include <random>

int Draw() {
  // cplint: allow(no-unseeded-rng)
  std::random_device rd;
  return static_cast<int>(rd());
}
